//! Shared scoped worker pool for the offline/online pipeline.
//!
//! Three hot paths fan work across threads — the all-pairs correlation
//! table (one Dijkstra per road), full-model RTF training (288 independent
//! per-slot CCD fits), and layer-parallel GSP (Jacobi sweeps over BFS
//! layers). Each used to bring its own ad-hoc threading; this crate is the
//! single sanctioned home for OS threads (`cargo xtask lint` flags raw
//! `std::thread::spawn`/`thread::scope` anywhere else in library code).
//!
//! Two entry points:
//!
//! * [`ComputePool::map`] — order-preserving parallel map for one-shot
//!   fan-outs (table rows, training slots). Spawns its workers once per
//!   call, so the spawn cost amortizes over the whole batch.
//! * [`ComputePool::scoped`] — persistent workers for iterative solvers:
//!   the workers are spawned once and [`PoolScope::run_chunks`] dispatches
//!   many small batches to them (GSP runs hundreds of layer sweeps per
//!   propagation; per-sweep spawning dominated the old implementation).
//!
//! Everything is scoped-thread based (`std::thread::scope` under the
//! hood), so jobs may borrow non-`'static` data — graphs, parameter
//! tables, row slices — without `Arc` plumbing. No dependencies, no
//! unsafe code.
//!
//! ## Determinism
//!
//! The pool never changes *what* is computed, only *where*: `map`
//! preserves item order in its output and `run_chunks` reassembles chunk
//! results in chunk order, so results are bit-identical at every thread
//! count (enforced by serial-equivalence property tests in the consumer
//! crates). Worker panics are captured and re-raised on the caller's
//! thread after the batch drains, matching plain-loop semantics.
//!
//! ## Sizing
//!
//! [`ComputePool::new`] takes an explicit thread count; `0` (or
//! [`ComputePool::from_env`]) defers to the `RTSE_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//!
//! ## Observability
//!
//! The `*_observed` entry points ([`ComputePool::map_observed`],
//! [`ComputePool::scoped_observed`]) thread an [`rtse_obs::ObsHandle`]
//! through the scope: every dispatched job counts under `pool.jobs`
//! (`map` counts one per item at every thread count, including the
//! serial short-circuit) and queued-but-not-started jobs move the
//! `pool.queue_depth` gauge. The plain entry points delegate with a
//! no-op handle and pay nothing.

use rtse_obs::{ObsHandle, Stage};
use rtse_sync::mpsc::{channel, Receiver, Sender};
use rtse_sync::{Mutex, MutexGuard, PoisonError};
use std::panic::AssertUnwindSafe;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "RTSE_THREADS";

/// Resolves the default worker count: `RTSE_THREADS` when set to a
/// positive integer, otherwise the host's available parallelism (1 when
/// even that is unknown).
pub fn env_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Locks a mutex, ignoring poisoning: pool state stays usable even when a
/// job panicked (the panic itself is re-raised separately).
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-width worker pool. Cheap to construct — threads are spawned
/// per [`map`](Self::map)/[`scoped`](Self::scoped) call and joined before
/// the call returns, so a `ComputePool` is just a thread-count policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputePool {
    threads: usize,
}

/// A unit of work dispatched to a pool worker.
type Job<'p> = Box<dyn FnOnce() + Send + 'p>;

impl Default for ComputePool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ComputePool {
    /// A pool of exactly `threads` workers; `0` means "size from the
    /// environment" (see [`env_threads`]).
    pub fn new(threads: usize) -> Self {
        Self { threads: if threads == 0 { env_threads() } else { threads } }
    }

    /// A pool sized from `RTSE_THREADS` / available parallelism.
    pub fn from_env() -> Self {
        Self::new(0)
    }

    /// The worker count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, preserving order: output
    /// index `i` is `f(i, items[i])`. Falls back to a plain serial loop
    /// for a single-thread pool or a batch of ≤ 1 items. Panics in `f`
    /// are re-raised here after the batch drains.
    pub fn map<T, O, F>(&self, items: Vec<T>, f: F) -> Vec<O>
    where
        T: Send,
        O: Send,
        F: Fn(usize, T) -> O + Sync,
    {
        self.map_observed(&ObsHandle::noop(), items, f)
    }

    /// [`map`](Self::map) with job accounting: every item counts one
    /// `pool.jobs` event on `obs` — including on the serial short-circuit
    /// path, so the count is invariant across thread counts.
    pub fn map_observed<T, O, F>(&self, obs: &ObsHandle, items: Vec<T>, f: F) -> Vec<O>
    where
        T: Send,
        O: Send,
        F: Fn(usize, T) -> O + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            obs.add(Stage::PoolJobs, n as u64);
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let f = &f;
        let (tx, rx) = channel::<(usize, std::thread::Result<O>)>();
        self.scoped_observed(obs, |scope| {
            for (i, item) in items.into_iter().enumerate() {
                let tx = tx.clone();
                scope.submit(Box::new(move || {
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(i, item)));
                    let _ = tx.send((i, out));
                }));
            }
        });
        drop(tx);
        let mut tagged: Vec<(usize, std::thread::Result<O>)> = rx.into_iter().collect();
        tagged.sort_unstable_by_key(|&(i, _)| i);
        let mut out = Vec::with_capacity(n);
        for (_, result) in tagged {
            match result {
                Ok(o) => out.push(o),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Spawns the pool's workers once and runs `f` with a [`PoolScope`]
    /// that dispatches jobs to them. All submitted jobs complete before
    /// `scoped` returns. With a single-thread pool no workers are spawned
    /// and jobs run inline on submission.
    pub fn scoped<'p, R>(&'p self, f: impl FnOnce(&PoolScope<'p>) -> R) -> R {
        self.scoped_observed(&ObsHandle::noop(), f)
    }

    /// [`scoped`](Self::scoped) with job accounting: submissions count
    /// `pool.jobs` events and move the `pool.queue_depth` gauge on `obs`
    /// while queued (see [`PoolScope::submit`]).
    pub fn scoped_observed<'p, R>(
        &'p self,
        obs: &ObsHandle,
        f: impl FnOnce(&PoolScope<'p>) -> R,
    ) -> R {
        if self.threads <= 1 {
            return f(&PoolScope { tx: None, threads: 1, obs: obs.clone() });
        }
        let (tx, rx) = channel::<Job<'p>>();
        let rx = Mutex::new(rx);
        let rx = &rx;
        std::thread::scope(move |s| {
            for _ in 0..self.threads {
                s.spawn(move || worker_loop(rx));
            }
            let scope = PoolScope { tx: Some(tx), threads: self.threads, obs: obs.clone() };
            f(&scope)
            // `scope` (and with it the job sender) drops here; workers
            // drain the queue, exit, and the thread scope joins them.
        })
    }
}

/// Pulls jobs off the shared queue until the scope closes it.
fn worker_loop(rx: &Mutex<Receiver<Job<'_>>>) {
    loop {
        let job = lock_ignore_poison(rx).recv();
        match job {
            Ok(job) => job(),
            Err(_) => break,
        }
    }
}

/// Handle for submitting work to the persistent workers of one
/// [`ComputePool::scoped`] region.
pub struct PoolScope<'p> {
    /// `None` for a single-thread pool: jobs run inline.
    tx: Option<Sender<Job<'p>>>,
    threads: usize,
    /// Job accounting sink (no-op unless the scope was opened through
    /// [`ComputePool::scoped_observed`]).
    obs: ObsHandle,
}

impl<'p> PoolScope<'p> {
    /// The number of workers serving this scope.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queues one job. Runs it inline when the pool is single-threaded or
    /// (defensively) when every worker has died.
    ///
    /// With an enabled scope handle, each submission counts one
    /// `pool.jobs` event, and queued jobs raise the `pool.queue_depth`
    /// gauge until a worker picks them up.
    pub fn submit(&self, job: Job<'p>) {
        self.obs.incr(Stage::PoolJobs);
        match &self.tx {
            Some(tx) => {
                let job: Job<'p> = if self.obs.is_enabled() {
                    let obs = self.obs.clone();
                    obs.gauge_add(Stage::PoolQueueDepth, 1);
                    Box::new(move || {
                        obs.gauge_add(Stage::PoolQueueDepth, -1);
                        job();
                    })
                } else {
                    job
                };
                if let Err(send_back) = tx.send(job) {
                    (send_back.0)();
                }
            }
            None => job(),
        }
    }

    /// Splits `items` into ≤ `target_chunks` contiguous chunks, applies
    /// `f` to each chunk on the pool, and returns the per-chunk results
    /// in chunk order. Short-circuits to an inline serial pass when the
    /// pool is single-threaded or only one chunk would be dispatched, so
    /// small batches pay no synchronization cost. Panics in `f` are
    /// re-raised here after the batch drains.
    ///
    /// `f` must be `Copy` (e.g. a capture-by-reference closure) because
    /// each chunk's job carries its own copy into the pool.
    pub fn run_chunks<T, O, F>(&self, items: &'p [T], target_chunks: usize, f: F) -> Vec<O>
    where
        T: Sync,
        O: Send + 'p,
        F: Fn(&'p [T]) -> O + Send + Copy + 'p,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let chunk = items.len().div_ceil(target_chunks.max(1)).max(1);
        if self.tx.is_none() || chunk >= items.len() {
            return items.chunks(chunk).map(f).collect();
        }
        let (tx, rx) = channel::<(usize, std::thread::Result<O>)>();
        for (ci, part) in items.chunks(chunk).enumerate() {
            let tx = tx.clone();
            self.submit(Box::new(move || {
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(part)));
                let _ = tx.send((ci, out));
            }));
        }
        drop(tx);
        let mut tagged: Vec<(usize, std::thread::Result<O>)> = rx.into_iter().collect();
        tagged.sort_unstable_by_key(|&(i, _)| i);
        let mut out = Vec::with_capacity(tagged.len());
        for (_, result) in tagged {
            match result {
                Ok(o) => out.push(o),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_zero_defers_to_env_or_host() {
        let pool = ComputePool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(ComputePool::new(3).threads(), 3);
    }

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in 1..=8 {
            let got = ComputePool::new(threads).map(items.clone(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = ComputePool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7], |i, x| x + i), vec![7]);
    }

    #[test]
    fn map_can_write_disjoint_mut_slices() {
        let mut table = [0.0f64; 6 * 4];
        let rows: Vec<&mut [f64]> = table.chunks_mut(4).collect();
        ComputePool::new(3).map(rows, |i, row| {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (i * 10 + j) as f64;
            }
        });
        assert_eq!(table[0], 0.0);
        assert_eq!(table[4], 10.0);
        assert_eq!(table[5 * 4 + 3], 53.0);
    }

    #[test]
    fn run_chunks_matches_serial_and_keeps_chunk_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = vec![items.iter().sum()];
        let serial_total: u64 = serial[0];
        for threads in 1..=8 {
            let pool = ComputePool::new(threads);
            let sums = pool
                .scoped(|scope| scope.run_chunks(&items, threads, |part| part.iter().sum::<u64>()));
            assert_eq!(sums.iter().sum::<u64>(), serial_total, "threads = {threads}");
            // Chunk order: the first result covers the smallest items.
            let chunk = items.len().div_ceil(threads).max(1);
            let first_expected: u64 = items[..chunk.min(items.len())].iter().sum();
            assert_eq!(sums.first().copied(), Some(first_expected), "threads = {threads}");
        }
    }

    #[test]
    fn scoped_workers_persist_across_batches() {
        let pool = ComputePool::new(4);
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        pool.scoped(|scope| {
            for _round in 0..10 {
                let n = scope
                    .run_chunks(&items, 4, |part| {
                        counter.fetch_add(part.len(), Ordering::Relaxed);
                        part.len()
                    })
                    .iter()
                    .sum::<usize>();
                assert_eq!(n, 64);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 640);
    }

    #[test]
    fn map_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            ComputePool::new(4).map((0..16).collect::<Vec<usize>>(), |_, x| {
                assert!(x != 7, "boom on 7");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn env_threads_is_positive() {
        assert!(env_threads() >= 1);
    }

    #[test]
    fn observed_map_counts_one_job_per_item_at_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 4, 8] {
            let obs = ObsHandle::fresh();
            let got = ComputePool::new(threads).map_observed(&obs, items.clone(), |_, x| x * 2);
            assert_eq!(got.len(), 37);
            if obs.is_enabled() {
                let reg = obs.registry().expect("fresh handle has a registry");
                assert_eq!(reg.count(Stage::PoolJobs), 37, "threads = {threads}");
                assert_eq!(reg.gauge(Stage::PoolQueueDepth), 0, "queue drained");
            }
        }
    }

    #[test]
    fn observed_scope_counts_submissions_and_returns_gauge_to_zero() {
        let obs = ObsHandle::fresh();
        let pool = ComputePool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scoped_observed(&obs, |scope| {
            for _ in 0..25 {
                scope.submit(Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 25);
        if obs.is_enabled() {
            let reg = obs.registry().expect("fresh handle has a registry");
            assert_eq!(reg.count(Stage::PoolJobs), 25);
            assert_eq!(reg.gauge(Stage::PoolQueueDepth), 0);
            let depth_max = reg.snapshot().stage(Stage::PoolQueueDepth).gauge_max;
            assert!(depth_max >= 0);
        }
    }

    #[test]
    fn plain_entry_points_stay_unobserved() {
        // `map`/`scoped` must not panic or misbehave through the no-op
        // delegation (overhead is just the disabled-handle branch).
        let got = ComputePool::new(4).map((0..10).collect::<Vec<usize>>(), |_, x| x + 1);
        assert_eq!(got[9], 10);
    }
}
