//! LASSO regression by cyclic coordinate descent.
//!
//! Solves `argmin_w (1/2n) ||X w - y||² + lambda ||w||_1` with the standard
//! covariance-update coordinate descent (Friedman et al.). This is the
//! baseline estimator the paper tunes with L1-regularization in `0..0.5`.

use crate::vector::soft_threshold;
use crate::Matrix;

/// Configuration for the coordinate-descent LASSO solver.
#[derive(Debug, Clone, Copy)]
pub struct LassoConfig {
    /// L1 penalty weight (`lambda`); the paper tunes this in `[0, 0.5]`.
    pub lambda: f64,
    /// Convergence threshold on the max absolute coefficient change.
    pub tol: f64,
    /// Hard cap on full coordinate sweeps.
    pub max_iters: usize,
    /// When true, a bias (intercept) term is fitted by centering `X` and `y`.
    pub fit_intercept: bool,
}

impl Default for LassoConfig {
    fn default() -> Self {
        Self { lambda: 0.1, tol: 1e-8, max_iters: 10_000, fit_intercept: true }
    }
}

/// Fitted LASSO model.
#[derive(Debug, Clone)]
pub struct LassoSolution {
    /// Coefficients, one per design-matrix column.
    pub weights: Vec<f64>,
    /// Intercept (0 when `fit_intercept` was false).
    pub intercept: f64,
    /// Number of coordinate sweeps performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iters`.
    pub converged: bool,
}

impl LassoSolution {
    /// Predicts the response for one feature row.
    pub fn predict(&self, features: &[f64]) -> f64 {
        crate::vector::dot(&self.weights, features) + self.intercept
    }

    /// Number of non-zero coefficients (the sparsity LASSO is used for).
    pub fn active_set_size(&self) -> usize {
        self.weights.iter().filter(|w| w.abs() > 1e-12).count()
    }
}

/// Runs cyclic coordinate descent for the LASSO objective.
///
/// ```
/// use rtse_math::{lasso_coordinate_descent, LassoConfig, Matrix};
///
/// // y = 2·x0, x1 is noise: the L1 penalty zeroes the useless feature.
/// let x = Matrix::from_rows(&[&[1.0, 0.3], &[2.0, -0.4], &[3.0, 0.1], &[4.0, -0.2]]);
/// let y = [2.0, 4.0, 6.0, 8.0];
/// let cfg = LassoConfig { lambda: 0.05, fit_intercept: false, ..Default::default() };
/// let sol = lasso_coordinate_descent(&x, &y, &cfg);
/// assert!((sol.weights[0] - 2.0).abs() < 0.1);
/// assert_eq!(sol.active_set_size(), 1);
/// ```
///
/// # Panics
/// Panics if `x.rows() != y.len()` or `x` has no rows.
pub fn lasso_coordinate_descent(x: &Matrix, y: &[f64], config: &LassoConfig) -> LassoSolution {
    let n = x.rows();
    let p = x.cols();
    assert_eq!(n, y.len(), "lasso: rows/target mismatch");
    assert!(n > 0, "lasso: empty design matrix");

    // Optionally center columns and target so the intercept separates out.
    let col_means: Vec<f64> = if config.fit_intercept {
        (0..p).map(|j| (0..n).map(|i| x[(i, j)]).sum::<f64>() / n as f64).collect()
    } else {
        vec![0.0; p]
    };
    let y_mean = if config.fit_intercept { y.iter().sum::<f64>() / n as f64 } else { 0.0 };

    // Precompute centered column squared norms (the coordinate curvature).
    let mut col_sq = vec![0.0; p];
    for j in 0..p {
        for i in 0..n {
            let v = x[(i, j)] - col_means[j];
            col_sq[j] += v * v;
        }
    }

    let mut w = vec![0.0; p];
    // Residual r = y_centered - Xc * w; starts as centered y since w = 0.
    let mut r: Vec<f64> = y.iter().map(|yi| yi - y_mean).collect();

    let nf = n as f64;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iters {
        iterations += 1;
        let mut max_delta = 0.0_f64;
        for j in 0..p {
            if col_sq[j] < 1e-18 {
                continue; // constant column carries no signal
            }
            // rho = (1/n) * Xc_j^T (r + Xc_j * w_j)
            let mut rho = 0.0;
            for i in 0..n {
                let xij = x[(i, j)] - col_means[j];
                rho += xij * r[i];
            }
            rho = rho / nf + col_sq[j] / nf * w[j];
            let w_new = soft_threshold(rho, config.lambda) / (col_sq[j] / nf);
            let delta = w_new - w[j];
            if delta != 0.0 {
                for i in 0..n {
                    let xij = x[(i, j)] - col_means[j];
                    r[i] -= xij * delta;
                }
                w[j] = w_new;
                max_delta = max_delta.max(delta.abs());
            }
        }
        if max_delta < config.tol {
            converged = true;
            break;
        }
    }

    let intercept =
        if config.fit_intercept { y_mean - crate::vector::dot(&w, &col_means) } else { 0.0 };
    LassoSolution { weights: w, intercept, iterations, converged }
}

/// LASSO objective value `(1/2n)||Xw - y||² + lambda ||w||_1`; used by tests
/// to check KKT/optimality and exposed for diagnostics.
pub fn lasso_objective(x: &Matrix, y: &[f64], sol: &LassoSolution, lambda: f64) -> f64 {
    let n = x.rows() as f64;
    let mut rss = 0.0;
    for i in 0..x.rows() {
        let pred = sol.predict(x.row(i));
        let e = pred - y[i];
        rss += e * e;
    }
    rss / (2.0 * n) + lambda * crate::vector::norm1(&sol.weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ridge::ridge_solve;
    use proptest::prelude::*;

    fn design() -> (Matrix, Vec<f64>) {
        // y = 2*x0 - 1*x1 + 0*x2 + noiseless
        let x = Matrix::from_rows(&[
            &[1.0, 0.5, 0.2],
            &[0.3, -1.0, 0.8],
            &[-0.7, 0.2, -0.5],
            &[1.5, 1.0, 0.0],
            &[-1.2, 0.4, 0.9],
            &[0.8, -0.6, -0.3],
        ]);
        let y: Vec<f64> = (0..x.rows()).map(|i| 2.0 * x[(i, 0)] - x[(i, 1)]).collect();
        (x, y)
    }

    #[test]
    fn zero_penalty_matches_least_squares() {
        let (x, y) = design();
        let cfg = LassoConfig { lambda: 0.0, fit_intercept: false, ..Default::default() };
        let sol = lasso_coordinate_descent(&x, &y, &cfg);
        assert!(sol.converged);
        let ls = ridge_solve(&x, &y, 0.0).unwrap();
        for (a, b) in sol.weights.iter().zip(ls.iter()) {
            assert!(approx_eq(*a, *b, 1e-6), "{a} vs {b}");
        }
    }

    #[test]
    fn recovers_sparse_truth() {
        let (x, y) = design();
        let cfg = LassoConfig { lambda: 0.01, fit_intercept: false, ..Default::default() };
        let sol = lasso_coordinate_descent(&x, &y, &cfg);
        assert!(approx_eq(sol.weights[0], 2.0, 0.1));
        assert!(approx_eq(sol.weights[1], -1.0, 0.1));
        assert!(sol.weights[2].abs() < 0.1);
    }

    #[test]
    fn large_penalty_zeroes_everything() {
        let (x, y) = design();
        let cfg = LassoConfig { lambda: 1e6, fit_intercept: true, ..Default::default() };
        let sol = lasso_coordinate_descent(&x, &y, &cfg);
        assert_eq!(sol.active_set_size(), 0);
        // With all weights zero the intercept is the target mean.
        assert!(approx_eq(sol.intercept, y.iter().sum::<f64>() / y.len() as f64, 1e-9));
    }

    #[test]
    fn intercept_handles_shifted_target() {
        let (x, mut y) = design();
        for yi in &mut y {
            *yi += 100.0;
        }
        let cfg = LassoConfig { lambda: 0.01, fit_intercept: true, ..Default::default() };
        let sol = lasso_coordinate_descent(&x, &y, &cfg);
        // Prediction at row 0 should track the shifted target.
        assert!(approx_eq(sol.predict(x.row(0)), y[0], 0.3));
    }

    #[test]
    fn constant_column_is_ignored() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0]]);
        let y = [2.0, 4.0, 6.0];
        let cfg = LassoConfig { lambda: 0.001, fit_intercept: true, ..Default::default() };
        let sol = lasso_coordinate_descent(&x, &y, &cfg);
        assert_eq!(sol.weights[1], 0.0);
        assert!(approx_eq(sol.weights[0], 2.0, 0.05));
    }

    proptest! {
        /// Increasing lambda never increases the L1 norm of the solution.
        #[test]
        fn penalty_monotonically_shrinks_l1(seed_rows in proptest::collection::vec(
            proptest::collection::vec(-2.0..2.0f64, 3), 6..12)) {
            let rows: Vec<&[f64]> = seed_rows.iter().map(|r| r.as_slice()).collect();
            let x = Matrix::from_rows(&rows);
            let y: Vec<f64> = (0..x.rows()).map(|i| x[(i, 0)] - 0.5 * x[(i, 2)]).collect();
            let mut last = f64::INFINITY;
            for lambda in [0.0, 0.05, 0.2, 1.0] {
                let cfg = LassoConfig { lambda, fit_intercept: false, ..Default::default() };
                let sol = lasso_coordinate_descent(&x, &y, &cfg);
                let l1 = crate::vector::norm1(&sol.weights);
                prop_assert!(l1 <= last + 1e-6);
                last = l1;
            }
        }

        /// The solver's objective never beats a small perturbation of itself
        /// (local optimality smoke check).
        #[test]
        fn solution_is_locally_optimal(perturb in -0.05..0.05f64) {
            let (x, y) = design();
            let cfg = LassoConfig { lambda: 0.1, fit_intercept: false, ..Default::default() };
            let sol = lasso_coordinate_descent(&x, &y, &cfg);
            let base = lasso_objective(&x, &y, &sol, cfg.lambda);
            for j in 0..3 {
                let mut other = sol.clone();
                other.weights[j] += perturb;
                let obj = lasso_objective(&x, &y, &other, cfg.lambda);
                prop_assert!(obj + 1e-9 >= base);
            }
        }
    }
}
