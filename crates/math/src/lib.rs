//! Dense linear algebra and statistics substrate for CrowdRTSE.
//!
//! The paper's baselines (LASSO regression and graph-regularized matrix
//! completion) and the RTF trainer need a small but real numerical toolkit.
//! This crate provides it from scratch: a dense [`Matrix`], vector kernels,
//! a Cholesky solver, coordinate-descent LASSO and ridge solvers, summary
//! statistics, and histogram utilities used by the evaluation metrics.
//!
//! Everything is `f64`, row-major, and allocation-conscious: the solvers
//! reuse workspace buffers and the kernels operate on slices so callers can
//! bring their own storage.

pub mod cg;
pub mod cholesky;
pub mod histogram;
pub mod lasso;
pub mod matrix;
pub mod ridge;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use cg::{conjugate_gradient, CgSolution};
pub use cholesky::CholeskyError;
pub use histogram::Histogram;
pub use lasso::{lasso_coordinate_descent, LassoConfig, LassoSolution};
pub use matrix::Matrix;
pub use ridge::ridge_solve;
pub use sparse::SparseMatrix;
pub use stats::{
    mean, pearson, population_std, sample_std, try_mean, try_pearson, try_population_std,
    try_sample_std, OnlineCov, OnlineStats, StatsError,
};

/// Numerical tolerance used across the crate when comparing floats.
pub const EPS: f64 = 1e-12;

/// Returns `true` when two floats agree within `tol` absolutely or relatively.
///
/// Used pervasively in tests; relative comparison guards against large
/// magnitudes, absolute comparison guards against values near zero.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1e-13, 0.0, 1e-9));
        assert!(!approx_eq(1e-3, 0.0, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-6));
        assert!(!approx_eq(1e9, 1.01e9, 1e-6));
    }
}
