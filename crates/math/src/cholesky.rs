//! Cholesky factorization and SPD linear solve.
//!
//! Used by the ridge solver (which in turn seeds the LASSO path) and by
//! tests that need an exact reference solution.

use crate::Matrix;

/// Error returned when a matrix is not symmetric positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyError;

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not symmetric positive definite")
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` with `A = L * L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; returns [`CholeskyError`] if a
    /// non-positive pivot is encountered.
    pub fn factor(a: &Matrix) -> Result<Self, CholeskyError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(CholeskyError);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using forward/back substitution on the factor.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Log-determinant of `A` (twice the log-trace of the factor diagonal).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// One-shot SPD solve `A x = b`.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    Ok(Cholesky::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn factor_hand_example() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(approx_eq(ch.l()[(0, 0)], 2.0, 1e-12));
        assert!(approx_eq(ch.l()[(1, 0)], 1.0, 1e-12));
        assert!(approx_eq(ch.l()[(1, 1)], 2.0_f64.sqrt(), 1e-12));
        assert_eq!(ch.l()[(0, 1)], 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!(approx_eq(*xi, *ti, 1e-10));
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(Cholesky::factor(&a).unwrap_err(), CholeskyError);
    }

    #[test]
    fn rejects_zero_matrix() {
        let a = Matrix::zeros(2, 2);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn log_det_matches_hand_value() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(approx_eq(ch.log_det(), (36.0_f64).ln(), 1e-12));
    }

    proptest! {
        /// Random SPD matrices (built as B^T B + I) factor and solve correctly.
        #[test]
        fn random_spd_round_trip(
            entries in proptest::collection::vec(-2.0..2.0f64, 9),
            rhs in proptest::collection::vec(-10.0..10.0f64, 3),
        ) {
            let b = Matrix::from_vec(3, 3, entries);
            let mut a = b.gram();
            a.add_diagonal(1.0);
            let x = solve_spd(&a, &rhs).unwrap();
            let back = a.matvec(&x);
            for (bi, ri) in back.iter().zip(rhs.iter()) {
                prop_assert!(approx_eq(*bi, *ri, 1e-7));
            }
        }
    }
}
