//! Fixed-bin histogram used for the DAPE (distribution of absolute
//! percentage error) figures.

/// A histogram over `[lo, hi)` with equal-width bins plus an overflow bin.
///
/// The paper's DAPE plots bucket absolute percentage errors; values at or
/// above `hi` land in the final overflow bin so nothing is silently dropped.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)` and
    /// one extra overflow bin.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self { lo, hi, counts: vec![0; bins + 1], total: 0 }
    }

    /// Number of regular (non-overflow) bins.
    pub fn bins(&self) -> usize {
        self.counts.len() - 1
    }

    /// Adds one observation. NaN observations are counted in overflow.
    pub fn add(&mut self, x: f64) {
        let idx = if x.is_nan() || x >= self.hi {
            self.counts.len() - 1
        } else if x < self.lo {
            0
        } else {
            let w = (self.hi - self.lo) / self.bins() as f64;
            (((x - self.lo) / w) as usize).min(self.bins() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw counts; last entry is the overflow bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations per bin (empty histogram yields all zeros).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// `(lo, hi)` bounds of bin `i`; the overflow bin reports `(hi, +inf)`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins() as f64;
        if i >= self.bins() {
            (self.hi, f64::INFINITY)
        } else {
            (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
        }
    }

    /// Fraction of observations strictly below `threshold` (approximated at
    /// bin granularity, exact when `threshold` is a bin edge).
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let (blo, bhi) = self.bin_bounds(i);
            if bhi <= threshold {
                acc += c;
            } else if blo < threshold {
                // Partial bin: assume uniform within the bin.
                let frac = (threshold - blo) / (bhi - blo);
                acc += (c as f64 * frac).round() as u64;
            }
        }
        acc as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn buckets_values_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend(&[0.0, 0.1, 0.3, 0.6, 0.9, 1.5]);
        // bins: [0,.25) [.25,.5) [.5,.75) [.75,1) overflow
        assert_eq!(h.counts(), &[2, 1, 1, 1, 1]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn overflow_and_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0); // clamps into first bin
        h.add(1.0); // boundary -> overflow
        h.add(f64::NAN); // overflow
        assert_eq!(h.counts(), &[1, 0, 2]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 2.0, 5);
        h.extend(&[0.1, 0.5, 1.9, 3.0]);
        let sum: f64 = h.fractions().iter().sum();
        assert!(approx_eq(sum, 1.0, 1e-12));
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(h.fractions().iter().all(|&f| f == 0.0));
        assert_eq!(h.fraction_below(0.5), 0.0);
    }

    #[test]
    fn fraction_below_bin_edge_is_exact() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend(&[0.1, 0.2, 0.3, 0.6, 0.9]);
        // below 0.5: 0.1, 0.2, 0.3 => 3/5
        assert!(approx_eq(h.fraction_below(0.5), 0.6, 1e-12));
    }

    #[test]
    fn bin_bounds_reported() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert_eq!(h.bin_bounds(0), (0.0, 0.5));
        assert_eq!(h.bin_bounds(1), (0.5, 1.0));
        let (lo, hi) = h.bin_bounds(2);
        assert_eq!(lo, 1.0);
        assert!(hi.is_infinite());
    }
}
