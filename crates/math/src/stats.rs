//! Summary statistics used by the RTF moment estimator and the synthetic
//! data generator.
//!
//! Two API surfaces cover the same math:
//!
//! * the plain functions ([`mean`], [`population_std`], …) keep the
//!   historical convention of returning `0.0` for degenerate samples —
//!   convenient inside the moment estimator, where an empty history slot
//!   legitimately means "no signal";
//! * the `try_*` variants return a typed [`StatsError`] instead, and also
//!   reject non-finite inputs, for callers that need to distinguish "no
//!   data" from "zero".

use std::error::Error;
use std::fmt;

/// Why a statistic could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// Fewer observations than the statistic needs.
    TooFewSamples {
        /// Minimum sample count for the statistic.
        needed: usize,
        /// Observed sample count.
        got: usize,
    },
    /// Paired samples of different lengths.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// An input value was NaN or infinite; the offending index is given.
    NonFiniteInput {
        /// Index of the first non-finite value.
        index: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples differ in length: {left} vs {right}")
            }
            StatsError::NonFiniteInput { index } => {
                write!(f, "non-finite input at index {index}")
            }
        }
    }
}

impl Error for StatsError {}

fn check_finite(xs: &[f64]) -> Result<(), StatsError> {
    match xs.iter().position(|x| !x.is_finite()) {
        None => Ok(()),
        Some(index) => Err(StatsError::NonFiniteInput { index }),
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Arithmetic mean with typed errors: rejects empty and non-finite input.
pub fn try_mean(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    check_finite(xs)?;
    Ok(mean(xs))
}

/// Population standard deviation (divides by `n`); 0 for slices of length < 1.
pub fn population_std(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Population standard deviation with typed errors: rejects empty and
/// non-finite input.
pub fn try_population_std(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    check_finite(xs)?;
    Ok(population_std(xs))
}

/// Sample standard deviation (divides by `n - 1`); 0 for slices of length < 2.
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Sample standard deviation with typed errors: rejects fewer than 2
/// samples and non-finite input.
pub fn try_sample_std(xs: &[f64]) -> Result<f64, StatsError> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples { needed: 2, got: xs.len() });
    }
    check_finite(xs)?;
    Ok(sample_std(xs))
}

/// Pearson correlation with typed errors: rejects mismatched lengths,
/// fewer than 2 pairs, and non-finite input. A numerically constant
/// marginal still maps to `Ok(0.0)` — that is a well-defined answer for
/// the RTF estimator, not an error.
pub fn try_pearson(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch { left: xs.len(), right: ys.len() });
    }
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples { needed: 2, got: xs.len() });
    }
    check_finite(xs)?;
    check_finite(ys)?;
    Ok(pearson(xs, ys))
}

/// Pearson correlation coefficient of two paired samples.
///
/// Returns 0 when either sample is (numerically) constant, which is the
/// behaviour the RTF moment estimator wants: a road whose speed never varies
/// carries no correlation signal.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    let denom = (sxx * syy).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        (sxy / denom).clamp(-1.0, 1.0)
    }
}

/// Welford single-pass accumulator for mean and variance.
///
/// Used where the historical store streams records instead of materializing
/// per-slot sample vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (`n - 1` denominator); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_hand_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&xs), 5.0, 1e-12));
        assert!(approx_eq(population_std(&xs), 2.0, 1e-12));
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(population_std(&[]), 0.0);
        assert_eq!(sample_std(&[3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn try_variants_reject_degenerate_input() {
        assert_eq!(try_mean(&[]), Err(StatsError::TooFewSamples { needed: 1, got: 0 }));
        assert_eq!(try_population_std(&[]), Err(StatsError::TooFewSamples { needed: 1, got: 0 }));
        assert_eq!(try_sample_std(&[3.0]), Err(StatsError::TooFewSamples { needed: 2, got: 1 }));
        assert_eq!(
            try_pearson(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { left: 2, right: 1 })
        );
        assert_eq!(
            try_pearson(&[1.0], &[2.0]),
            Err(StatsError::TooFewSamples { needed: 2, got: 1 })
        );
    }

    #[test]
    fn try_variants_reject_non_finite_input() {
        assert_eq!(try_mean(&[1.0, f64::NAN]), Err(StatsError::NonFiniteInput { index: 1 }));
        assert_eq!(
            try_population_std(&[f64::INFINITY]),
            Err(StatsError::NonFiniteInput { index: 0 })
        );
        assert_eq!(
            try_sample_std(&[1.0, f64::NEG_INFINITY]),
            Err(StatsError::NonFiniteInput { index: 1 })
        );
        assert_eq!(
            try_pearson(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFiniteInput { index: 1 })
        );
    }

    #[test]
    fn try_variants_agree_with_plain_on_good_input() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(try_mean(&xs), Ok(mean(&xs)));
        assert_eq!(try_population_std(&xs), Ok(population_std(&xs)));
        assert_eq!(try_sample_std(&xs), Ok(sample_std(&xs)));
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        assert_eq!(try_pearson(&xs, &ys), Ok(pearson(&xs, &ys)));
        // A constant marginal is a defined answer, not an error.
        assert_eq!(try_pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), Ok(0.0));
    }

    #[test]
    fn stats_error_display() {
        let s = StatsError::TooFewSamples { needed: 2, got: 0 }.to_string();
        assert!(s.contains("at least 2"));
        let s = StatsError::NonFiniteInput { index: 4 }.to_string();
        assert!(s.contains("index 4"));
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!(approx_eq(pearson(&xs, &ys), 1.0, 1e-12));
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!(approx_eq(pearson(&xs, &neg), -1.0, 1e-12));
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [1.0, 2.0, 3.5, -4.0, 0.25];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!(approx_eq(acc.mean(), mean(&xs), 1e-12));
        assert!(approx_eq(acc.population_std(), population_std(&xs), 1e-12));
        assert_eq!(acc.count(), xs.len() as u64);
    }

    #[test]
    fn merge_matches_single_pass() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0];
        let mut a = OnlineStats::new();
        xs.iter().for_each(|&x| a.push(x));
        let mut b = OnlineStats::new();
        ys.iter().for_each(|&y| b.push(y));
        a.merge(&b);

        let mut all = OnlineStats::new();
        xs.iter().chain(ys.iter()).for_each(|&x| all.push(x));
        assert!(approx_eq(a.mean(), all.mean(), 1e-12));
        assert!(approx_eq(a.population_variance(), all.population_variance(), 1e-12));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    proptest! {
        #[test]
        fn pearson_bounded(
            xs in proptest::collection::vec(-1e3..1e3f64, 2..64),
        ) {
            let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
            let r = pearson(&xs, &ys);
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn online_variance_nonnegative(xs in proptest::collection::vec(-1e6..1e6f64, 0..128)) {
            let mut acc = OnlineStats::new();
            for x in &xs {
                acc.push(*x);
            }
            prop_assert!(acc.population_variance() >= 0.0);
        }
    }
}

/// Welford-style single-pass accumulator for the covariance of a paired
/// stream `(x, y)`.
///
/// Drives the incremental RTF updater: per-edge speed correlations must be
/// refreshed as new days stream in without re-reading the whole history.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineCov {
    count: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    comoment: f64,
}

impl OnlineCov {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one pair in.
    pub fn push(&mut self, x: f64, y: f64) {
        self.count += 1;
        let n = self.count as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        self.m2_x += dx * (x - self.mean_x);
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        self.m2_y += dy * (y - self.mean_y);
        // Co-moment uses the updated mean_x and pre-update mean_y shift.
        self.comoment += dx * (y - self.mean_y);
    }

    /// Number of pairs folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Population covariance; 0 when empty.
    pub fn population_cov(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.comoment / self.count as f64
        }
    }

    /// Pearson correlation; 0 when either marginal is constant or fewer
    /// than 2 pairs were seen.
    pub fn pearson(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let denom = (self.m2_x * self.m2_y).sqrt();
        if denom < 1e-12 {
            0.0
        } else {
            (self.comoment / denom).clamp(-1.0, 1.0)
        }
    }
}

#[cfg(test)]
mod online_cov_tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn matches_batch_pearson() {
        let xs = [1.0, 2.0, 4.0, 3.0, 5.5];
        let ys = [2.1, 3.9, 8.3, 6.0, 10.8];
        let mut acc = OnlineCov::new();
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            acc.push(x, y);
        }
        assert!(approx_eq(acc.pearson(), pearson(&xs, &ys), 1e-12));
        // Batch population covariance.
        let mx = mean(&xs);
        let my = mean(&ys);
        let cov: f64 = xs.iter().zip(ys.iter()).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>()
            / xs.len() as f64;
        assert!(approx_eq(acc.population_cov(), cov, 1e-12));
    }

    #[test]
    fn degenerate_cases() {
        let mut acc = OnlineCov::new();
        assert_eq!(acc.pearson(), 0.0);
        acc.push(1.0, 2.0);
        assert_eq!(acc.pearson(), 0.0); // single pair
        acc.push(1.0, 5.0); // x constant
        assert_eq!(acc.pearson(), 0.0);
    }

    #[test]
    fn perfect_correlation() {
        let mut acc = OnlineCov::new();
        for i in 0..10 {
            acc.push(i as f64, 3.0 * i as f64 + 1.0);
        }
        assert!(approx_eq(acc.pearson(), 1.0, 1e-12));
    }
}
