//! Conjugate gradient for SPD sparse systems.
//!
//! Used by the exact-GMRF-inference path (`rtse-gsp::exact`) to solve the
//! conditional precision system directly, as a validation oracle for the
//! iterative propagation.

use crate::sparse::SparseMatrix;
use crate::vector::{axpy, dot};

/// Outcome of a CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` for SPD `A` with (Jacobi-preconditioned) conjugate
/// gradient.
///
/// # Panics
/// Panics when `A` is not square or dimensions mismatch.
pub fn conjugate_gradient(a: &SparseMatrix, b: &[f64], tol: f64, max_iters: usize) -> CgSolution {
    assert_eq!(a.rows(), a.cols(), "CG requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = b.len();
    // Jacobi preconditioner: M⁻¹ = 1/diag(A) (diag is strictly positive for
    // SPD matrices with stored diagonals; fall back to 1 otherwise).
    let precond: Vec<f64> =
        a.diagonal().iter().map(|&d| if d > 0.0 { 1.0 / d } else { 1.0 }).collect();

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A*0
    let mut z: Vec<f64> = r.iter().zip(precond.iter()).map(|(ri, mi)| ri * mi).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let b_norm = crate::vector::norm2(b).max(1e-30);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    while iterations < max_iters {
        let res_norm = crate::vector::norm2(&r);
        if res_norm <= tol * b_norm {
            return CgSolution { x, iterations, residual_norm: res_norm, converged: true };
        }
        iterations += 1;
        a.matvec_into(&p, &mut ap);
        let denom = dot(&p, &ap);
        if denom <= 0.0 {
            break; // not SPD or numerically degenerate
        }
        let alpha = rz / denom;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        for ((zi, ri), mi) in z.iter_mut().zip(r.iter()).zip(precond.iter()) {
            *zi = ri * mi;
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }
    let residual_norm = crate::vector::norm2(&r);
    CgSolution { x, iterations, residual_norm, converged: residual_norm <= tol * b_norm }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd_3x3() -> SparseMatrix {
        // [[4,1,0],[1,3,1],[0,1,5]]
        SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn solves_small_spd_system() {
        let a = spd_3x3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let sol = conjugate_gradient(&a, &b, 1e-12, 100);
        assert!(sol.converged);
        for (xi, ti) in sol.x.iter().zip(x_true.iter()) {
            assert!(approx_eq(*xi, *ti, 1e-8), "{xi} vs {ti}");
        }
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = spd_3x3();
        let sol = conjugate_gradient(&a, &[0.0; 3], 1e-10, 100);
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matches_cholesky_on_random_spd() {
        // Dense SPD via B^T B + I, compared against the Cholesky solver.
        let entries: Vec<f64> = (0..16).map(|i| ((i * 37 % 17) as f64 - 8.0) / 5.0).collect();
        let b_mat = crate::Matrix::from_vec(4, 4, entries);
        let mut dense = b_mat.gram();
        dense.add_diagonal(1.0);
        let mut triplets = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                triplets.push((r, c, dense[(r, c)]));
            }
        }
        let sparse = SparseMatrix::from_triplets(4, 4, &triplets);
        let rhs = [1.0, 2.0, -3.0, 0.5];
        let cg = conjugate_gradient(&sparse, &rhs, 1e-13, 200);
        let ch = crate::cholesky::solve_spd(&dense, &rhs).unwrap();
        assert!(cg.converged);
        for (a, b) in cg.x.iter().zip(ch.iter()) {
            assert!(approx_eq(*a, *b, 1e-7));
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let a = spd_3x3();
        let b = [1.0, 1.0, 1.0];
        let sol = conjugate_gradient(&a, &b, 1e-16, 1);
        assert_eq!(sol.iterations, 1);
    }
}
