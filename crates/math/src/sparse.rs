//! CSR sparse matrix, sufficient for GMRF precision systems.

/// A compressed-sparse-row matrix over `f64`.
///
/// Built from coordinate triplets; duplicate coordinates are summed. Only
/// the operations the exact-inference path needs are provided (matvec and
/// diagonal extraction).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from `(row, col, value)` triplets, summing duplicates.
    ///
    /// # Panics
    /// Panics when a coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            if col_idx.last() == Some(&(c as u32))
                && row_ptr[r + 1] > 0
                && row_ptr[r + 1] > row_ptr[r]
            {
                // Same row (row_ptr[r+1] counts entries so far in row r via
                // the running fill below) — merge the duplicate (r, c).
                if let Some(last) = values.last_mut() {
                    *last += v;
                    continue;
                }
            }
            col_idx.push(c as u32);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input length");
        assert_eq!(y.len(), self.rows, "matvec output length");
        for r in 0..self.rows {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[r] = acc;
        }
    }

    /// `A x` into a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// The main diagonal (zeros where no entry is stored). Only valid for
    /// square matrices.
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "diagonal of non-square matrix");
        let mut d = vec![0.0; self.rows];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] as usize == r {
                    d[r] = self.values[k];
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn from_triplets_and_matvec() {
        // [[2, 1], [0, 3]]
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.matvec(&[1.0, 2.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = SparseMatrix::from_triplets(1, 1, &[(0, 0, 1.5), (0, 0, 0.5)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.matvec(&[2.0]), vec![4.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let a = SparseMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 5.0), (1, 2, 1.0), (2, 2, 7.0), (2, 0, 3.0)],
        );
        assert_eq!(a.diagonal(), vec![5.0, 0.0, 7.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = SparseMatrix::from_triplets(2, 3, &[]);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn matches_dense_matvec() {
        let triplets = [(0usize, 1usize, 2.0), (1, 0, -1.0), (1, 2, 4.0), (2, 2, 0.5), (0, 0, 1.0)];
        let a = SparseMatrix::from_triplets(3, 3, &triplets);
        let mut dense = crate::Matrix::zeros(3, 3);
        for &(r, c, v) in &triplets {
            dense[(r, c)] += v;
        }
        let x = [0.3, -1.2, 2.5];
        let ys = a.matvec(&x);
        let yd = dense.matvec(&x);
        for (s, d) in ys.iter().zip(yd.iter()) {
            assert!(approx_eq(*s, *d, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_triplet_rejected() {
        SparseMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }
}
