//! Ridge (Tikhonov) regression via the normal equations.
//!
//! `argmin_w ||X w - y||² + alpha ||w||²` solved exactly with a Cholesky
//! factorization of `X^T X + alpha I`. Serves as the dense fallback when the
//! LASSO penalty is zero and as a reference solution in tests.

use crate::cholesky::{solve_spd, CholeskyError};
use crate::Matrix;

/// Solves ridge regression `argmin_w ||X w - y||^2 + alpha * ||w||^2`.
///
/// `alpha` must be non-negative; a strictly positive `alpha` guarantees the
/// system is SPD even when `X` is rank-deficient.
///
/// # Errors
/// Returns [`CholeskyError`] when `alpha == 0` and `X^T X` is singular.
pub fn ridge_solve(x: &Matrix, y: &[f64], alpha: f64) -> Result<Vec<f64>, CholeskyError> {
    assert_eq!(x.rows(), y.len(), "ridge: rows/target mismatch");
    assert!(alpha >= 0.0, "ridge: alpha must be non-negative");
    let mut gram = x.gram();
    gram.add_diagonal(alpha);
    let xty = x.transpose_matvec(y);
    solve_spd(&gram, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn recovers_exact_solution_with_zero_penalty() {
        // Overdetermined consistent system.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let w_true = [2.0, -1.0];
        let y = x.matvec(&w_true);
        let w = ridge_solve(&x, &y, 0.0).unwrap();
        for (a, b) in w.iter().zip(w_true.iter()) {
            assert!(approx_eq(*a, *b, 1e-10));
        }
    }

    #[test]
    fn penalty_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let y = [3.0, 3.0, 3.0];
        let w0 = ridge_solve(&x, &y, 0.0).unwrap()[0];
        let w1 = ridge_solve(&x, &y, 10.0).unwrap()[0];
        assert!(approx_eq(w0, 3.0, 1e-12));
        assert!(w1 < w0 && w1 > 0.0);
    }

    #[test]
    fn singular_design_without_penalty_errors() {
        // Two identical columns -> singular Gram matrix.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let y = [1.0, 2.0];
        assert!(ridge_solve(&x, &y, 0.0).is_err());
        // With a penalty it is solvable.
        assert!(ridge_solve(&x, &y, 0.1).is_ok());
    }
}
