//! Slice-based vector kernels.
//!
//! These are free functions on `&[f64]` so callers can keep their own
//! storage; the solvers in this crate build on them.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (maximum absolute value); 0 for empty slices.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x` in place.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Elementwise difference `a - b` into a fresh vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Maximum absolute elementwise difference between two slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter().zip(b.iter()).fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Soft-thresholding operator `sign(z) * max(|z| - gamma, 0)`.
///
/// The proximal operator of the L1 norm; the core of coordinate-descent
/// LASSO.
#[inline]
pub fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn dot_hand_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norms_hand_values() {
        let v = [3.0, -4.0];
        assert!(approx_eq(norm2(&v), 5.0, 1e-12));
        assert!(approx_eq(norm1(&v), 7.0, 1e-12));
        assert!(approx_eq(norm_inf(&v), 4.0, 1e-12));
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, -0.5]);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(1.0, 1.0), 0.0);
    }

    #[test]
    fn max_abs_diff_hand_value() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, -1.0]), 3.0);
    }

    proptest! {
        #[test]
        fn dot_is_commutative(a in proptest::collection::vec(-1e3..1e3f64, 0..32)) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            prop_assert!(approx_eq(dot(&a, &b), dot(&b, &a), 1e-9));
        }

        #[test]
        fn cauchy_schwarz(a in proptest::collection::vec(-1e3..1e3f64, 1..32),
                          b in proptest::collection::vec(-1e3..1e3f64, 1..32)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert!(dot(a, b).abs() <= norm2(a) * norm2(b) + 1e-6);
        }

        #[test]
        fn soft_threshold_shrinks(z in -1e3..1e3f64, g in 0.0..1e3f64) {
            let s = soft_threshold(z, g);
            prop_assert!(s.abs() <= z.abs());
            // Never flips sign.
            prop_assert!(s == 0.0 || s.signum() == z.signum());
        }
    }
}
