//! Row-major dense matrix with the operations the estimators need.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(r, c)` lives at `r * cols + c`. The type deliberately exposes
/// only the operations used by the CrowdRTSE estimators (matvec, matmul,
/// transpose, Gram matrices, column views) rather than a general BLAS.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Writes `values` into column `c`.
    ///
    /// # Panics
    /// Panics if `values.len() != self.rows()`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows);
        for (r, &v) in values.iter().enumerate() {
            self[(r, c)] = v;
        }
    }

    /// `y = A * x` (matrix-vector product), writing into `y`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            *out = crate::vector::dot(row, x);
        }
    }

    /// `A * x` returning a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `A^T * x` returning a fresh vector.
    pub fn transpose_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let xr = x[r];
            for (c, &a) in row.iter().enumerate() {
                y[c] += a * xr;
            }
        }
        y
    }

    /// Dense matrix product `self * other`.
    ///
    /// Uses the cache-friendly ikj loop order.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    orow[j] += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Gram matrix `A^T * A` (symmetric, `cols x cols`).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ai = row[i];
                if ai == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += ai * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Adds `value` to every diagonal entry (only valid for square matrices).
    pub fn add_diagonal(&mut self, value: f64) {
        assert_eq!(self.rows, self.cols, "add_diagonal requires square matrix");
        for i in 0..self.rows {
            self[(i, i)] += value;
        }
    }

    /// Elementwise `self += scale * other`.
    pub fn axpy(&mut self, scale: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Maximum absolute entry (∞-norm of the vectorized matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn zeros_and_index() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn transpose_matvec_matches_transpose_then_matvec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, -2.0, 0.5];
        let direct = m.transpose_matvec(&x);
        let via_transpose = m.transpose().matvec(&x);
        for (a, b) in direct.iter().zip(via_transpose.iter()) {
            assert!(approx_eq(*a, *b, 1e-12));
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_hand_example() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gram_matches_transpose_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, -4.0, 2.0]]);
        let g = a.gram();
        let g2 = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(g[(i, j)], g2[(i, j)], 1e-12));
            }
        }
    }

    #[test]
    fn set_col_and_col_round_trip() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm_hand_value() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!(approx_eq(m.frobenius_norm(), 5.0, 1e-12));
    }

    #[test]
    fn add_diagonal_and_scale() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(2.0);
        m.scale(0.5);
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
