//! Dense historical speed store.
//!
//! Layout is `[day][slot][road]` in one flat `Vec<f64>`: the generator
//! writes whole network snapshots slot by slot, and the RTF trainer reads
//! per-`(road, slot-of-day)` samples across days with a constant stride.
//! Missing observations are `NaN` and skipped by the samplers.

use crate::record::SpeedRecord;
use crate::slot::{SlotOfDay, TimeSlot, SLOTS_PER_DAY};
use rtse_graph::RoadId;

/// Dense store of `days x SLOTS_PER_DAY x roads` speed values.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    num_roads: usize,
    num_days: usize,
    /// `((day * SLOTS_PER_DAY) + slot) * num_roads + road`
    values: Vec<f64>,
}

impl HistoryStore {
    /// Creates an empty (all-missing) store.
    pub fn new(num_roads: usize, num_days: usize) -> Self {
        Self { num_roads, num_days, values: vec![f64::NAN; num_roads * num_days * SLOTS_PER_DAY] }
    }

    /// Number of roads.
    pub fn num_roads(&self) -> usize {
        self.num_roads
    }

    /// Number of days of history.
    pub fn num_days(&self) -> usize {
        self.num_days
    }

    /// Total number of present (non-missing) records.
    pub fn num_records(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }

    #[inline]
    fn offset(&self, day: usize, slot: SlotOfDay, road: RoadId) -> usize {
        debug_assert!(day < self.num_days, "day {day} out of range");
        debug_assert!(road.index() < self.num_roads, "road out of range");
        (day * SLOTS_PER_DAY + slot.index()) * self.num_roads + road.index()
    }

    /// Sets one observation.
    pub fn set(&mut self, day: usize, slot: SlotOfDay, road: RoadId, speed: f64) {
        let off = self.offset(day, slot, road);
        self.values[off] = speed;
    }

    /// Reads one observation; `None` when missing.
    pub fn get(&self, day: usize, slot: SlotOfDay, road: RoadId) -> Option<f64> {
        let v = self.values[self.offset(day, slot, road)];
        (!v.is_nan()).then_some(v)
    }

    /// Inserts a [`SpeedRecord`].
    ///
    /// # Panics
    /// Panics when the record's day exceeds the store capacity.
    pub fn insert(&mut self, record: &SpeedRecord) {
        let day = record.slot.day();
        assert!(day < self.num_days, "record day {day} beyond store capacity");
        self.set(day, record.slot.slot_of_day(), record.road, record.speed_kmh);
    }

    /// Full network snapshot (one value per road) for a day/slot; missing
    /// entries are `NaN`.
    pub fn snapshot(&self, day: usize, slot: SlotOfDay) -> &[f64] {
        let base = (day * SLOTS_PER_DAY + slot.index()) * self.num_roads;
        &self.values[base..base + self.num_roads]
    }

    /// Mutable snapshot row (generator use).
    pub fn snapshot_mut(&mut self, day: usize, slot: SlotOfDay) -> &mut [f64] {
        let base = (day * SLOTS_PER_DAY + slot.index()) * self.num_roads;
        &mut self.values[base..base + self.num_roads]
    }

    /// All present samples of one `(road, slot-of-day)` across days — the
    /// per-parameter sample the RTF moment estimator consumes.
    pub fn samples(&self, road: RoadId, slot: SlotOfDay) -> Vec<f64> {
        (0..self.num_days).filter_map(|day| self.get(day, slot, road)).collect()
    }

    /// Paired present samples of two roads in one slot across days (for
    /// correlation estimation): only days where both are present.
    pub fn paired_samples(&self, a: RoadId, b: RoadId, slot: SlotOfDay) -> (Vec<f64>, Vec<f64>) {
        let mut xs = Vec::with_capacity(self.num_days);
        let mut ys = Vec::with_capacity(self.num_days);
        for day in 0..self.num_days {
            if let (Some(x), Some(y)) = (self.get(day, slot, a), self.get(day, slot, b)) {
                xs.push(x);
                ys.push(y);
            }
        }
        (xs, ys)
    }

    /// Iterates over all present records.
    pub fn records(&self) -> impl Iterator<Item = SpeedRecord> + '_ {
        (0..self.num_days).flat_map(move |day| {
            SlotOfDay::all().flat_map(move |slot| {
                let row = self.snapshot(day, slot);
                row.iter().enumerate().filter(|(_, v)| !v.is_nan()).map(move |(r, &v)| {
                    SpeedRecord {
                        road: RoadId::from(r),
                        slot: TimeSlot::new(day, slot),
                        speed_kmh: v,
                    }
                })
            })
        })
    }

    /// Merges another store into this one: present cells in `other`
    /// overwrite (or fill) the corresponding cells here. Used to combine
    /// data sources — e.g. fixed-station records with floating-car probes.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn merge_from(&mut self, other: &HistoryStore) {
        assert_eq!(self.num_roads, other.num_roads, "merge: road count mismatch");
        assert_eq!(self.num_days, other.num_days, "merge: day count mismatch");
        for (dst, &src) in self.values.iter_mut().zip(other.values.iter()) {
            if !src.is_nan() {
                *dst = src;
            }
        }
    }

    /// Blanks out every day for which `keep` returns false (same shape,
    /// non-matching days become missing). The samplers skip missing data,
    /// so moment estimation on the result uses only the kept days — this
    /// is how the day-type models split weekday/weekend history.
    pub fn retain_days(&self, keep: impl Fn(usize) -> bool) -> HistoryStore {
        let mut out = self.clone();
        for day in 0..self.num_days {
            if keep(day) {
                continue;
            }
            for slot in SlotOfDay::all() {
                for v in out.snapshot_mut(day, slot) {
                    *v = f64::NAN;
                }
            }
        }
        out
    }

    /// Restricts the store to a subset of roads (remapped densely in the
    /// order given); used when training on induced sub-networks (Fig. 5).
    pub fn project_roads(&self, keep: &[RoadId]) -> HistoryStore {
        let mut out = HistoryStore::new(keep.len(), self.num_days);
        for day in 0..self.num_days {
            for slot in SlotOfDay::all() {
                let src = self.snapshot(day, slot);
                let dst = out.snapshot_mut(day, slot);
                for (new, old) in keep.iter().enumerate() {
                    dst[new] = src[old.index()];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut s = HistoryStore::new(3, 2);
        assert_eq!(s.get(0, SlotOfDay(5), RoadId(1)), None);
        s.set(0, SlotOfDay(5), RoadId(1), 33.0);
        assert_eq!(s.get(0, SlotOfDay(5), RoadId(1)), Some(33.0));
        assert_eq!(s.num_records(), 1);
    }

    #[test]
    fn snapshot_layout() {
        let mut s = HistoryStore::new(2, 1);
        s.set(0, SlotOfDay(0), RoadId(0), 10.0);
        s.set(0, SlotOfDay(0), RoadId(1), 20.0);
        assert_eq!(s.snapshot(0, SlotOfDay(0)), &[10.0, 20.0]);
        assert!(s.snapshot(0, SlotOfDay(1))[0].is_nan());
    }

    #[test]
    fn samples_skip_missing_days() {
        let mut s = HistoryStore::new(1, 3);
        s.set(0, SlotOfDay(7), RoadId(0), 1.0);
        s.set(2, SlotOfDay(7), RoadId(0), 3.0);
        assert_eq!(s.samples(RoadId(0), SlotOfDay(7)), vec![1.0, 3.0]);
    }

    #[test]
    fn paired_samples_require_both_present() {
        let mut s = HistoryStore::new(2, 3);
        s.set(0, SlotOfDay(0), RoadId(0), 1.0);
        s.set(0, SlotOfDay(0), RoadId(1), 2.0);
        s.set(1, SlotOfDay(0), RoadId(0), 5.0); // road 1 missing on day 1
        s.set(2, SlotOfDay(0), RoadId(1), 6.0); // road 0 missing on day 2
        let (xs, ys) = s.paired_samples(RoadId(0), RoadId(1), SlotOfDay(0));
        assert_eq!(xs, vec![1.0]);
        assert_eq!(ys, vec![2.0]);
    }

    #[test]
    fn records_iterates_all_present() {
        let mut s = HistoryStore::new(2, 1);
        s.set(0, SlotOfDay(0), RoadId(0), 1.0);
        s.set(0, SlotOfDay(100), RoadId(1), 2.0);
        let recs: Vec<SpeedRecord> = s.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].road, RoadId(0));
        assert_eq!(recs[1].slot.slot_of_day(), SlotOfDay(100));
    }

    #[test]
    fn insert_record_round_trip() {
        let mut s = HistoryStore::new(1, 2);
        let rec = SpeedRecord::new(RoadId(0), TimeSlot::new(1, SlotOfDay(3)), 55.0);
        s.insert(&rec);
        assert_eq!(s.get(1, SlotOfDay(3), RoadId(0)), Some(55.0));
    }

    #[test]
    fn retain_days_blanks_unkept() {
        let mut s = HistoryStore::new(2, 4);
        for day in 0..4 {
            s.set(day, SlotOfDay(0), RoadId(0), day as f64 + 1.0);
        }
        let even = s.retain_days(|d| d % 2 == 0);
        assert_eq!(even.get(0, SlotOfDay(0), RoadId(0)), Some(1.0));
        assert_eq!(even.get(1, SlotOfDay(0), RoadId(0)), None);
        assert_eq!(even.get(2, SlotOfDay(0), RoadId(0)), Some(3.0));
        // Original untouched.
        assert_eq!(s.get(1, SlotOfDay(0), RoadId(0)), Some(2.0));
        assert_eq!(even.samples(RoadId(0), SlotOfDay(0)), vec![1.0, 3.0]);
    }

    #[test]
    fn project_roads_remaps() {
        let mut s = HistoryStore::new(3, 1);
        s.set(0, SlotOfDay(0), RoadId(2), 9.0);
        let p = s.project_roads(&[RoadId(2), RoadId(0)]);
        assert_eq!(p.num_roads(), 2);
        assert_eq!(p.get(0, SlotOfDay(0), RoadId(0)), Some(9.0));
        assert_eq!(p.get(0, SlotOfDay(0), RoadId(1)), None);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    #[test]
    fn merge_fills_and_overwrites() {
        let mut a = HistoryStore::new(2, 1);
        a.set(0, SlotOfDay(0), RoadId(0), 10.0);
        a.set(0, SlotOfDay(1), RoadId(0), 11.0);
        let mut b = HistoryStore::new(2, 1);
        b.set(0, SlotOfDay(1), RoadId(0), 99.0); // overwrites
        b.set(0, SlotOfDay(2), RoadId(1), 20.0); // fills
        a.merge_from(&b);
        assert_eq!(a.get(0, SlotOfDay(0), RoadId(0)), Some(10.0));
        assert_eq!(a.get(0, SlotOfDay(1), RoadId(0)), Some(99.0));
        assert_eq!(a.get(0, SlotOfDay(2), RoadId(1)), Some(20.0));
    }

    #[test]
    #[should_panic(expected = "road count mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = HistoryStore::new(2, 1);
        let b = HistoryStore::new(3, 1);
        a.merge_from(&b);
    }
}
