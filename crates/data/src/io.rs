//! CSV-style persistence for speed records.
//!
//! One line per record: `road,global_slot,speed_kmh`. A tiny hand-rolled
//! format (no serde needed for bulk numeric data) used by the experiment
//! harness to checkpoint generated datasets.

use crate::record::SpeedRecord;
use crate::slot::TimeSlot;
use rtse_graph::RoadId;
use std::io::{self, BufRead, Write};

/// Header line written before the records.
pub const HEADER: &str = "road,slot,speed_kmh";

/// Writes records as CSV to any sink.
pub fn write_records<W: Write>(
    mut w: W,
    records: impl Iterator<Item = SpeedRecord>,
) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for rec in records {
        writeln!(w, "{},{},{}", rec.road.0, rec.slot.0, rec.speed_kmh)?;
    }
    Ok(())
}

/// Error produced when parsing a CSV record stream.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, content } => {
                write!(f, "malformed record at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads records from a CSV stream produced by [`write_records`].
pub fn read_records<R: BufRead>(r: R) -> Result<Vec<SpeedRecord>, ReadError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (i == 0 && trimmed == HEADER) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parsed = (|| {
            let road: u32 = parts.next()?.parse().ok()?;
            let slot: u32 = parts.next()?.parse().ok()?;
            let speed: f64 = parts.next()?.parse().ok()?;
            if parts.next().is_some() || !speed.is_finite() || speed < 0.0 {
                return None;
            }
            Some(SpeedRecord { road: RoadId(road), slot: TimeSlot(slot), speed_kmh: speed })
        })();
        match parsed {
            Some(rec) => out.push(rec),
            None => return Err(ReadError::Parse { line: i + 1, content: line }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotOfDay;

    fn sample() -> Vec<SpeedRecord> {
        vec![
            SpeedRecord::new(RoadId(0), TimeSlot::new(0, SlotOfDay(0)), 50.0),
            SpeedRecord::new(RoadId(3), TimeSlot::new(1, SlotOfDay(100)), 23.75),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_records(&mut buf, sample().into_iter()).unwrap();
        let back = read_records(buf.as_slice()).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn header_is_written_once() {
        let mut buf = Vec::new();
        write_records(&mut buf, sample().into_iter()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(HEADER));
        assert_eq!(text.matches(HEADER).count(), 1);
    }

    #[test]
    fn rejects_malformed_line() {
        let text = format!("{HEADER}\n1,2,not_a_number\n");
        let err = read_records(text.as_bytes()).unwrap_err();
        match err {
            ReadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_negative_speed() {
        let text = format!("{HEADER}\n1,2,-5.0\n");
        assert!(read_records(text.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let text = format!("{HEADER}\n\n1,2,3.0\n\n");
        let recs = read_records(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
    }
}
