//! Time discretization: 288 five-minute slots per day.
//!
//! "Each day is divided into 288 fine-grained time slots so that each
//! 5-minutes interval becomes a unique slot" (Section IV-A).

/// Number of slots per day.
pub const SLOTS_PER_DAY: usize = 288;

/// Minutes per slot.
pub const SLOT_MINUTES: usize = 5;

/// A slot index within one day, `0..288`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotOfDay(pub u16);

impl SlotOfDay {
    /// Builds from an hour/minute clock time.
    ///
    /// # Panics
    /// Panics if `hour >= 24` or `minute >= 60`.
    pub fn from_hm(hour: u32, minute: u32) -> Self {
        assert!(hour < 24 && minute < 60, "invalid clock time {hour}:{minute}");
        SlotOfDay(((hour * 60 + minute) / SLOT_MINUTES as u32) as u16)
    }

    /// The slot index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Hour of day covered by the slot start.
    pub fn hour(self) -> u32 {
        (self.0 as u32 * SLOT_MINUTES as u32) / 60
    }

    /// Minute-of-hour of the slot start.
    pub fn minute(self) -> u32 {
        (self.0 as u32 * SLOT_MINUTES as u32) % 60
    }

    /// Fractional hour of the slot midpoint, e.g. slot 102 → ~8.54 h. The
    /// synthetic profile functions are parameterized on this.
    pub fn frac_hour(self) -> f64 {
        (self.0 as f64 + 0.5) * SLOT_MINUTES as f64 / 60.0
    }

    /// Iterator over all slots of a day.
    pub fn all() -> impl ExactSizeIterator<Item = SlotOfDay> {
        (0..SLOTS_PER_DAY as u16).map(SlotOfDay)
    }
}

/// A global slot index: `(day, slot-of-day)` flattened as
/// `day * SLOTS_PER_DAY + slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeSlot(pub u32);

impl TimeSlot {
    /// Builds from a day index and slot-of-day.
    pub fn new(day: usize, slot: SlotOfDay) -> Self {
        TimeSlot((day * SLOTS_PER_DAY) as u32 + slot.0 as u32)
    }

    /// The day index.
    #[inline]
    pub fn day(self) -> usize {
        self.0 as usize / SLOTS_PER_DAY
    }

    /// The within-day slot.
    #[inline]
    pub fn slot_of_day(self) -> SlotOfDay {
        SlotOfDay((self.0 as usize % SLOTS_PER_DAY) as u16)
    }

    /// Flat index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next slot (possibly rolling into the next day).
    pub fn next(self) -> TimeSlot {
        TimeSlot(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hm_examples() {
        assert_eq!(SlotOfDay::from_hm(0, 0).index(), 0);
        assert_eq!(SlotOfDay::from_hm(0, 5).index(), 1);
        assert_eq!(SlotOfDay::from_hm(8, 30).index(), 102);
        assert_eq!(SlotOfDay::from_hm(23, 55).index(), 287);
    }

    #[test]
    #[should_panic(expected = "invalid clock time")]
    fn from_hm_rejects_bad_hour() {
        SlotOfDay::from_hm(24, 0);
    }

    #[test]
    fn hm_round_trip() {
        for slot in SlotOfDay::all() {
            let back = SlotOfDay::from_hm(slot.hour(), slot.minute());
            assert_eq!(back, slot);
        }
    }

    #[test]
    fn all_covers_a_day() {
        assert_eq!(SlotOfDay::all().len(), SLOTS_PER_DAY);
        assert_eq!(SlotOfDay::all().last().unwrap().index(), 287);
    }

    #[test]
    fn global_slot_round_trip() {
        let t = TimeSlot::new(3, SlotOfDay(100));
        assert_eq!(t.day(), 3);
        assert_eq!(t.slot_of_day(), SlotOfDay(100));
        assert_eq!(t.index(), 3 * 288 + 100);
    }

    #[test]
    fn next_rolls_over_day_boundary() {
        let t = TimeSlot::new(0, SlotOfDay(287));
        let n = t.next();
        assert_eq!(n.day(), 1);
        assert_eq!(n.slot_of_day(), SlotOfDay(0));
    }

    #[test]
    fn frac_hour_midpoint() {
        let s = SlotOfDay::from_hm(12, 0);
        assert!((s.frac_hour() - 12.0417).abs() < 1e-3);
    }
}
