//! Traffic incidents: the accidental variance periodic models miss.
//!
//! The paper's motivation is that periodicity-only estimators "are
//! incapable of predicting the accidental variations". The generator
//! injects incidents so that exactly this failure mode is present in the
//! evaluation data: an incident halves (or worse) the speed on an epicenter
//! road and decays over its graph neighborhood for a bounded time window.

use crate::slot::SlotOfDay;
use rtse_graph::{hop_distances, Graph, RoadId};

/// One localized traffic incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Epicenter road.
    pub road: RoadId,
    /// Day of occurrence.
    pub day: usize,
    /// First affected slot.
    pub start: SlotOfDay,
    /// Number of affected slots.
    pub duration_slots: usize,
    /// Peak fractional speed reduction at the epicenter, in `(0, 1]`.
    pub severity: f64,
    /// Hop radius of the affected neighborhood.
    pub radius_hops: usize,
}

impl Incident {
    /// Fractional speed multiplier (`1 - effect`) for a road at a slot, or
    /// 1.0 when unaffected. `hops` is the road's hop distance from the
    /// epicenter (precomputed by the caller).
    pub fn speed_multiplier(&self, day: usize, slot: SlotOfDay, hops: usize) -> f64 {
        if day != self.day || hops > self.radius_hops {
            return 1.0;
        }
        let s = slot.index();
        let start = self.start.index();
        if s < start || s >= start + self.duration_slots {
            return 1.0;
        }
        // Temporal shape: ramps up over the first quarter, full effect in
        // the middle, recovers over the last quarter.
        let progress = (s - start) as f64 / self.duration_slots as f64;
        let temporal = if progress < 0.25 {
            progress / 0.25
        } else if progress > 0.75 {
            (1.0 - progress) / 0.25
        } else {
            1.0
        };
        // Spatial decay: halves per hop.
        let spatial = 0.5_f64.powi(hops as i32);
        (1.0 - self.severity * temporal * spatial).max(0.05)
    }

    /// Hop distances from the epicenter, for use with
    /// [`Incident::speed_multiplier`].
    pub fn hop_field(&self, graph: &Graph) -> Vec<usize> {
        hop_distances(graph, &[self.road])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::path;

    fn incident() -> Incident {
        Incident {
            road: RoadId(2),
            day: 1,
            start: SlotOfDay(100),
            duration_slots: 12,
            severity: 0.6,
            radius_hops: 2,
        }
    }

    #[test]
    fn unaffected_off_day_and_off_window() {
        let inc = incident();
        assert_eq!(inc.speed_multiplier(0, SlotOfDay(105), 0), 1.0);
        assert_eq!(inc.speed_multiplier(1, SlotOfDay(99), 0), 1.0);
        assert_eq!(inc.speed_multiplier(1, SlotOfDay(112), 0), 1.0);
    }

    #[test]
    fn full_effect_mid_window_at_epicenter() {
        let inc = incident();
        let m = inc.speed_multiplier(1, SlotOfDay(106), 0);
        assert!((m - 0.4).abs() < 1e-9, "multiplier {m}");
    }

    #[test]
    fn effect_decays_with_hops() {
        let inc = incident();
        let m0 = inc.speed_multiplier(1, SlotOfDay(106), 0);
        let m1 = inc.speed_multiplier(1, SlotOfDay(106), 1);
        let m2 = inc.speed_multiplier(1, SlotOfDay(106), 2);
        let m3 = inc.speed_multiplier(1, SlotOfDay(106), 3);
        assert!(m0 < m1 && m1 < m2);
        assert_eq!(m3, 1.0, "outside radius is untouched");
    }

    #[test]
    fn ramps_up_and_recovers() {
        let inc = incident();
        let early = inc.speed_multiplier(1, SlotOfDay(100), 0);
        let mid = inc.speed_multiplier(1, SlotOfDay(106), 0);
        let late = inc.speed_multiplier(1, SlotOfDay(111), 0);
        assert!(early > mid);
        assert!(late > mid);
    }

    #[test]
    fn hop_field_on_path() {
        let g = path(5);
        let inc = incident();
        let hops = inc.hop_field(&g);
        assert_eq!(hops, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn multiplier_never_below_floor() {
        let inc = Incident { severity: 1.0, ..incident() };
        let m = inc.speed_multiplier(1, SlotOfDay(106), 0);
        assert!(m >= 0.05);
    }
}
