//! Floating-car (trajectory) data derivation.
//!
//! The paper's introduction lists trajectories as a primary source of
//! historical traffic data. A probe fleet does not observe every road in
//! every slot — coverage follows where vehicles actually drive. This
//! module simulates that: probe vehicles traverse shortest paths through
//! the network at the ground-truth speeds, reporting one noisy speed
//! sample per road they cross; samples are aggregated into a *sparse*
//! [`HistoryStore`] (missing where no probe drove). Training RTF on the
//! result exercises exactly the missing-data paths the real pipeline
//! needs.

use crate::slot::{SlotOfDay, SLOTS_PER_DAY};
use crate::store::HistoryStore;
use crate::synth::gaussian;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_graph::{dijkstra_with_paths, Graph, RoadId};

/// One recorded probe point: a vehicle crossed `road` during `slot` of
/// `day` at `speed_kmh`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePoint {
    /// Day index.
    pub day: usize,
    /// Slot the road was entered in.
    pub slot: SlotOfDay,
    /// The crossed road.
    pub road: RoadId,
    /// Reported (noisy) speed.
    pub speed_kmh: f64,
}

/// Probe-fleet configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Trips simulated per day.
    pub trips_per_day: usize,
    /// GPS/derivation noise on reported speeds, km/h.
    pub report_noise_kmh: f64,
    /// Seed for origins, destinations, departure times and noise.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self { trips_per_day: 200, report_noise_kmh: 1.5, seed: 0xF1EE7 }
    }
}

/// Simulates the fleet against dense ground truth and returns the probe
/// points plus the sparse history they induce (mean of samples per
/// road/slot/day).
///
/// # Panics
/// Panics when `truth` does not cover the graph.
pub fn simulate_fleet(
    graph: &Graph,
    truth: &HistoryStore,
    config: &FleetConfig,
) -> (Vec<ProbePoint>, HistoryStore) {
    assert_eq!(truth.num_roads(), graph.num_roads(), "truth/graph mismatch");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut points = Vec::new();
    for day in 0..truth.num_days() {
        for _ in 0..config.trips_per_day {
            let origin = RoadId::from(rng.random_range(0..graph.num_roads()));
            let dest = RoadId::from(rng.random_range(0..graph.num_roads()));
            if origin == dest {
                continue;
            }
            // Shortest path by free-flow travel time (drivers don't know
            // realtime speeds in advance; road length / class speed).
            let sp = dijkstra_with_paths(graph, origin, |e| {
                let (a, b) = graph.edge_endpoints(e);
                let ra = graph.road(a);
                let rb = graph.road(b);
                0.5 * (ra.length_m / ra.class.free_flow_speed()
                    + rb.length_m / rb.class.free_flow_speed())
            });
            let Some(path) = sp.path_to(dest) else { continue };
            // Depart at a random time of day, traverse in continuous time.
            let mut hour = rng.random_range(0.0..24.0);
            for road in path {
                let slot_idx = ((hour / 24.0) * SLOTS_PER_DAY as f64).floor() as usize;
                if slot_idx >= SLOTS_PER_DAY {
                    break; // trip ran past midnight; truncate
                }
                let slot = SlotOfDay(slot_idx as u16);
                let Some(true_speed) = truth.get(day, slot, road) else { continue };
                let reported = (true_speed + gaussian(&mut rng) * config.report_noise_kmh).max(0.5);
                points.push(ProbePoint { day, slot, road, speed_kmh: reported });
                // Advance the clock by this road's crossing time.
                let length_km = graph.road(road).length_m / 1000.0;
                hour += length_km / true_speed.max(1.0);
            }
        }
    }
    let history = aggregate_probes(graph.num_roads(), truth.num_days(), &points);
    (points, history)
}

/// Aggregates probe points into a sparse history store (per-cell mean).
pub fn aggregate_probes(num_roads: usize, num_days: usize, points: &[ProbePoint]) -> HistoryStore {
    let mut sums = HistoryStore::new(num_roads, num_days);
    let mut counts = vec![0u32; num_roads * num_days * SLOTS_PER_DAY];
    for p in points {
        let idx = (p.day * SLOTS_PER_DAY + p.slot.index()) * num_roads + p.road.index();
        let prior = sums.get(p.day, p.slot, p.road).unwrap_or(0.0);
        sums.set(p.day, p.slot, p.road, prior + p.speed_kmh);
        counts[idx] += 1;
    }
    let mut out = HistoryStore::new(num_roads, num_days);
    for day in 0..num_days {
        for slot in SlotOfDay::all() {
            for road in 0..num_roads {
                let idx = (day * SLOTS_PER_DAY + slot.index()) * num_roads + road;
                // `sums` holds a value exactly when counts[idx] > 0, so the
                // division below never sees a zero count.
                if let Some(s) = sums.get(day, slot, RoadId::from(road)) {
                    out.set(day, slot, RoadId::from(road), s / counts[idx] as f64);
                }
            }
        }
    }
    out
}

/// Fraction of `(road, slot, day)` cells with at least one probe.
pub fn coverage(history: &HistoryStore) -> f64 {
    let total = history.num_roads() * history.num_days() * SLOTS_PER_DAY;
    history.num_records() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;

    fn dense_world() -> (rtse_graph::Graph, HistoryStore) {
        let graph = grid(4, 4);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 3, incidents_per_day: 0.0, seed: 5, ..SynthConfig::default() },
        )
        .generate();
        (graph, ds.history)
    }

    #[test]
    fn fleet_produces_sparse_but_nonempty_history() {
        let (graph, truth) = dense_world();
        let (points, history) = simulate_fleet(
            &graph,
            &truth,
            &FleetConfig { trips_per_day: 50, ..Default::default() },
        );
        assert!(!points.is_empty());
        let cov = coverage(&history);
        assert!(cov > 0.0 && cov < 0.9, "coverage {cov} should be sparse");
    }

    #[test]
    fn coverage_grows_with_fleet_size() {
        let (graph, truth) = dense_world();
        let cov = |trips| {
            let cfg = FleetConfig { trips_per_day: trips, ..Default::default() };
            coverage(&simulate_fleet(&graph, &truth, &cfg).1)
        };
        assert!(cov(200) > cov(20));
    }

    #[test]
    fn probe_speeds_track_ground_truth() {
        let (graph, truth) = dense_world();
        let cfg = FleetConfig { trips_per_day: 100, report_noise_kmh: 0.0, ..Default::default() };
        let (points, _) = simulate_fleet(&graph, &truth, &cfg);
        for p in points.iter().take(500) {
            let t = truth.get(p.day, p.slot, p.road).expect("truth present");
            assert!((p.speed_kmh - t).abs() < 1e-9, "noiseless probes must be exact");
        }
    }

    #[test]
    fn aggregation_averages_multiple_probes() {
        let points = vec![
            ProbePoint { day: 0, slot: SlotOfDay(5), road: RoadId(1), speed_kmh: 30.0 },
            ProbePoint { day: 0, slot: SlotOfDay(5), road: RoadId(1), speed_kmh: 50.0 },
        ];
        let h = aggregate_probes(3, 1, &points);
        assert_eq!(h.get(0, SlotOfDay(5), RoadId(1)), Some(40.0));
        assert_eq!(h.num_records(), 1);
    }

    #[test]
    fn rtf_trains_on_trajectory_history() {
        // End-to-end: sparse floating-car history still yields a usable
        // model (missing cells are skipped by the moment estimator).
        let (graph, truth) = dense_world();
        let cfg = FleetConfig { trips_per_day: 400, ..Default::default() };
        let (_, sparse) = simulate_fleet(&graph, &truth, &cfg);
        let model = rtse_rtf_stub::moment_like(&graph, &sparse);
        assert!(model.iter().all(|m| m.is_finite()));
    }

    /// Minimal stand-in (the data crate cannot depend on rtse-rtf without a
    /// cycle): per-road overall mean of present samples, NaN-free.
    mod rtse_rtf_stub {
        use super::*;

        pub fn moment_like(graph: &rtse_graph::Graph, h: &HistoryStore) -> Vec<f64> {
            graph
                .road_ids()
                .map(|r| {
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for slot in SlotOfDay::all() {
                        for v in h.samples(r, slot) {
                            sum += v;
                            n += 1;
                        }
                    }
                    if n == 0 {
                        0.0
                    } else {
                        sum / n as f64
                    }
                })
                .collect()
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (graph, truth) = dense_world();
        let cfg = FleetConfig { trips_per_day: 30, seed: 11, ..Default::default() };
        let (a, _) = simulate_fleet(&graph, &truth, &cfg);
        let (b, _) = simulate_fleet(&graph, &truth, &cfg);
        assert_eq!(a, b);
    }
}
