//! Individual speed records.

use crate::slot::TimeSlot;
use rtse_graph::RoadId;

/// One observation: the (average) traffic speed of a road in a time slot.
///
/// This is the unit the Hong Kong feed publishes every 5 minutes; the
/// synthetic generator emits the same shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedRecord {
    /// The observed road.
    pub road: RoadId,
    /// The global time slot of the observation.
    pub slot: TimeSlot,
    /// Speed in km/h; non-negative and finite.
    pub speed_kmh: f64,
}

impl SpeedRecord {
    /// Creates a record, validating the speed.
    ///
    /// # Panics
    /// Panics on negative, NaN or infinite speeds — upstream feeds are
    /// sanitized at the boundary so the rest of the system can assume valid
    /// values.
    pub fn new(road: RoadId, slot: TimeSlot, speed_kmh: f64) -> Self {
        assert!(speed_kmh.is_finite() && speed_kmh >= 0.0, "invalid speed {speed_kmh} for {road}");
        Self { road, slot, speed_kmh }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::{SlotOfDay, TimeSlot};

    #[test]
    fn valid_record() {
        let r = SpeedRecord::new(RoadId(3), TimeSlot::new(0, SlotOfDay(10)), 42.5);
        assert_eq!(r.road, RoadId(3));
        assert_eq!(r.speed_kmh, 42.5);
    }

    #[test]
    #[should_panic(expected = "invalid speed")]
    fn negative_speed_rejected() {
        SpeedRecord::new(RoadId(0), TimeSlot(0), -1.0);
    }

    #[test]
    #[should_panic(expected = "invalid speed")]
    fn nan_speed_rejected() {
        SpeedRecord::new(RoadId(0), TimeSlot(0), f64::NAN);
    }
}
