//! Named scenario presets.
//!
//! Examples, tests and docs keep reaching for the same handful of
//! generator configurations; naming them keeps the tuning in one place
//! and makes experiment writeups reproducible by name.

use crate::synth::SynthConfig;

/// A calm city: strong periodicity, almost no incidents. Periodic models
/// do well here — the baseline case.
pub fn calm(days: usize, seed: u64) -> SynthConfig {
    SynthConfig {
        days,
        seed,
        incidents_per_day: 0.5,
        weak_periodicity_fraction: 0.05,
        weak_periodicity_scale: 2.0,
        ..SynthConfig::default()
    }
}

/// The default mixed city (the library's `SynthConfig::default()` with the
/// scenario's days/seed): moderate incidents, a minority of weakly
/// periodic roads.
pub fn standard(days: usize, seed: u64) -> SynthConfig {
    SynthConfig { days, seed, ..SynthConfig::default() }
}

/// A volatile city: paper-difficulty estimation (Per MAPE ~0.15–0.3).
/// Matches the experiment harness's semi-synthesized world.
pub fn volatile(days: usize, seed: u64) -> SynthConfig {
    SynthConfig {
        days,
        seed,
        incidents_per_day: 10.0,
        severity_range: (0.3, 0.55),
        weak_periodicity_fraction: 0.35,
        weak_periodicity_scale: 6.0,
        temporal_persistence: 0.9,
        diffusion_rounds: 2,
        diffusion_weight: 0.35,
        ..SynthConfig::default()
    }
}

/// An incident storm: frequent, long, severe incidents — the stress case
/// where periodicity-only estimation collapses.
pub fn incident_storm(days: usize, seed: u64) -> SynthConfig {
    SynthConfig {
        days,
        seed,
        incidents_per_day: 20.0,
        severity_range: (0.5, 0.7),
        duration_range: (24, 72),
        incident_radius: 3,
        ..SynthConfig::default()
    }
}

/// A commuter city with weekly seasonality (for the day-type models):
/// weekend rush dips at 30% of weekday strength.
pub fn weekly_seasonal(days: usize, seed: u64) -> SynthConfig {
    SynthConfig { days, seed, weekend_dip_scale: 0.3, ..SynthConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TrafficGenerator;
    use rtse_graph::generators::grid;
    use rtse_math::stats::population_std;

    /// Average day-to-day std across roads at a rush-hour slot.
    fn volatility_of(cfg: SynthConfig) -> f64 {
        let g = grid(3, 4);
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let slot = crate::SlotOfDay::from_hm(8, 30);
        let mut acc = 0.0;
        for r in g.road_ids() {
            acc += population_std(&ds.history.samples(r, slot));
        }
        acc / g.num_roads() as f64
    }

    #[test]
    fn scenarios_order_by_volatility() {
        let calm_v = volatility_of(calm(10, 3));
        let std_v = volatility_of(standard(10, 3));
        let vol_v = volatility_of(volatile(10, 3));
        assert!(calm_v < std_v, "calm {calm_v} vs standard {std_v}");
        assert!(std_v < vol_v, "standard {std_v} vs volatile {vol_v}");
    }

    #[test]
    fn incident_storm_depresses_speeds() {
        let g = grid(3, 4);
        let calm_ds = TrafficGenerator::new(&g, calm(6, 9)).generate();
        let storm_ds = TrafficGenerator::new(&g, incident_storm(6, 9)).generate();
        let mean_speed = |ds: &crate::SynthDataset| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for rec in ds.history.records() {
                sum += rec.speed_kmh;
                n += 1;
            }
            sum / n as f64
        };
        assert!(mean_speed(&storm_ds) < mean_speed(&calm_ds));
    }

    #[test]
    fn weekly_seasonal_sets_the_dip_scale() {
        let cfg = weekly_seasonal(14, 1);
        assert_eq!(cfg.weekend_dip_scale, 0.3);
        assert_eq!(cfg.days, 14);
    }
}
