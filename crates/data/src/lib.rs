//! Historical traffic-speed data substrate for CrowdRTSE.
//!
//! The paper trains its offline model on 30 days of 5-minute speed records
//! for 607 Hong Kong roads (5,244,480 records). That feed is not available
//! offline, so this crate supplies the equivalent:
//!
//! * [`slot`] — the 288-slots-per-day time discretization (Section IV-A);
//! * [`record`] / [`store`] — speed records and a dense historical store
//!   with the paper's record volume;
//! * [`profile`] — per-road daily speed profiles (free-flow speed,
//!   rush-hour dips, heterogeneous periodicity strength);
//! * [`incident`] — accidental traffic variance: localized incidents that
//!   depress speeds on a road and its neighborhood;
//! * [`synth`] — the seeded generator combining profiles, spatially
//!   correlated fluctuations (graph diffusion) and incidents into a
//!   [`HistoryStore`] plus ground-truth "today" data for online evaluation;
//! * [`io`] — CSV-style persistence of record sets.

pub mod incident;
pub mod io;
pub mod profile;
pub mod record;
pub mod scenario;
pub mod slot;
pub mod stations;
pub mod store;
pub mod synth;
pub mod trajectory;

pub use incident::Incident;
pub use profile::RoadProfile;
pub use record::SpeedRecord;
pub use slot::{SlotOfDay, TimeSlot, SLOTS_PER_DAY, SLOT_MINUTES};
pub use stations::StationNetwork;
pub use store::HistoryStore;
pub use synth::{SynthConfig, SynthDataset, TrafficGenerator};
pub use trajectory::{simulate_fleet, FleetConfig, ProbePoint};
