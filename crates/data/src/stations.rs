//! Fixed sensor stations (loop detectors / cameras).
//!
//! The paper's introduction contrasts two data sources: deployed sensors
//! with *fixed positions and limited coverage*, and mobile/crowdsourced
//! probes. This module models the former: a station network records the
//! speed of its host road continuously, with per-station noise and random
//! dropout — producing history that is *dense in time but sparse in
//! space* (the opposite sparsity pattern from [`crate::trajectory`]'s
//! probe fleets; merging both via [`crate::HistoryStore::merge_from`]
//! yields the realistic mixed-source training corpus).

use crate::slot::SlotOfDay;
use crate::store::HistoryStore;
use crate::synth::gaussian;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_graph::{Graph, RoadId};

/// A deployment of fixed sensors.
#[derive(Debug, Clone)]
pub struct StationNetwork {
    /// Host road per station (deduplicated).
    pub roads: Vec<RoadId>,
    /// Per-reading noise standard deviation, km/h.
    pub noise_kmh: f64,
    /// Probability that a reading is lost (sensor fault, comms gap).
    pub dropout: f64,
    /// Seed for noise and dropout draws.
    pub seed: u64,
}

impl StationNetwork {
    /// Places `count` stations on distinct uniformly random roads.
    pub fn random(graph: &Graph, count: usize, seed: u64) -> Self {
        assert!(count <= graph.num_roads(), "more stations than roads");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut roads = Vec::with_capacity(count);
        while roads.len() < count {
            let r = RoadId::from(rng.random_range(0..graph.num_roads()));
            if !roads.contains(&r) {
                roads.push(r);
            }
        }
        roads.sort();
        Self { roads, noise_kmh: 1.0, dropout: 0.02, seed }
    }

    /// Stations on the busiest roads (highest degree) — where a real
    /// agency would deploy.
    pub fn on_busiest_roads(graph: &Graph, count: usize, seed: u64) -> Self {
        assert!(count <= graph.num_roads(), "more stations than roads");
        let mut by_degree: Vec<RoadId> = graph.road_ids().collect();
        by_degree.sort_by_key(|&r| (std::cmp::Reverse(graph.degree(r)), r));
        let mut roads: Vec<RoadId> = by_degree.into_iter().take(count).collect();
        roads.sort();
        Self { roads, noise_kmh: 1.0, dropout: 0.02, seed }
    }

    /// Records every slot of every day from dense ground truth, producing
    /// a store that is present only on station roads (modulo dropout).
    ///
    /// # Panics
    /// Panics when `truth` does not cover the graph or `dropout` is not a
    /// probability.
    pub fn record(&self, graph: &Graph, truth: &HistoryStore) -> HistoryStore {
        assert_eq!(truth.num_roads(), graph.num_roads(), "truth/graph mismatch");
        assert!((0.0..=1.0).contains(&self.dropout), "dropout must be a probability");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = HistoryStore::new(truth.num_roads(), truth.num_days());
        for day in 0..truth.num_days() {
            for slot in SlotOfDay::all() {
                for &road in &self.roads {
                    if rng.random_range(0.0..1.0) < self.dropout {
                        continue;
                    }
                    if let Some(v) = truth.get(day, slot, road) {
                        let reading = (v + gaussian(&mut rng) * self.noise_kmh).max(0.0);
                        out.set(day, slot, road, reading);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;

    fn world() -> (Graph, HistoryStore) {
        let graph = grid(3, 4);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 3, incidents_per_day: 0.0, seed: 4, ..SynthConfig::default() },
        )
        .generate();
        (graph, ds.history)
    }

    #[test]
    fn records_only_station_roads() {
        let (graph, truth) = world();
        let stations = StationNetwork::random(&graph, 4, 9);
        let recorded = stations.record(&graph, &truth);
        for r in graph.road_ids() {
            let has_data =
                (0..3).any(|d| SlotOfDay::all().any(|s| recorded.get(d, s, r).is_some()));
            assert_eq!(has_data, stations.roads.contains(&r), "road {r}");
        }
    }

    #[test]
    fn dropout_thins_the_record() {
        let (graph, truth) = world();
        let mut stations = StationNetwork::random(&graph, 3, 9);
        stations.dropout = 0.0;
        let full = stations.record(&graph, &truth).num_records();
        stations.dropout = 0.5;
        let half = stations.record(&graph, &truth).num_records();
        assert!(half < full);
        assert!(half > full / 3, "roughly half should survive, got {half}/{full}");
    }

    #[test]
    fn busiest_roads_have_max_degree() {
        let (graph, _) = world();
        let stations = StationNetwork::on_busiest_roads(&graph, 2, 1);
        // 3x4 grid interior roads have degree 4; both picks must.
        for &r in &stations.roads {
            assert_eq!(graph.degree(r), 4);
        }
    }

    #[test]
    fn merged_sources_beat_either_alone_in_coverage() {
        let (graph, truth) = world();
        let stations = StationNetwork::random(&graph, 3, 9);
        let station_data = stations.record(&graph, &truth);
        let (_, probe_data) = crate::trajectory::simulate_fleet(
            &graph,
            &truth,
            &crate::trajectory::FleetConfig { trips_per_day: 30, ..Default::default() },
        );
        let mut merged = station_data.clone();
        merged.merge_from(&probe_data);
        assert!(merged.num_records() >= station_data.num_records());
        assert!(merged.num_records() >= probe_data.num_records());
        // Merged trains a model covering roads neither source covers alone.
        let model = moment_mu_present(&graph, &merged);
        let station_only = moment_mu_present(&graph, &station_data);
        assert!(model >= station_only);
    }

    /// Number of roads with at least one rush-hour sample.
    fn moment_mu_present(graph: &Graph, h: &HistoryStore) -> usize {
        let slot = SlotOfDay::from_hm(8, 30);
        graph.road_ids().filter(|&r| !h.samples(r, slot).is_empty()).count()
    }

    #[test]
    fn noiseless_station_reads_truth() {
        let (graph, truth) = world();
        let mut stations = StationNetwork::random(&graph, 2, 5);
        stations.noise_kmh = 0.0;
        stations.dropout = 0.0;
        let rec = stations.record(&graph, &truth);
        let slot = SlotOfDay(100);
        for &r in &stations.roads {
            assert_eq!(rec.get(0, slot, r), truth.get(0, slot, r));
        }
    }
}
