//! Seeded synthetic traffic generator.
//!
//! Substitutes for the paper's Hong Kong feed (see DESIGN.md). The
//! generator produces exactly the statistical structure the CrowdRTSE
//! algorithms exploit:
//!
//! * **periodicity** — every road follows its [`RoadProfile`] daily curve,
//!   with heterogeneous noise levels (a configurable fraction of roads is
//!   strongly volatile, i.e. weakly periodic);
//! * **correlation** — day-to-day deviations are spatially smoothed over
//!   the road graph (diffusion), so adjacent roads co-vary and the RTF edge
//!   weights `ρ_ij` have real signal to find;
//! * **accidental variance** — random [`Incident`]s depress speeds in a
//!   local neighborhood for a bounded window, which periodicity-only
//!   estimators cannot predict.

use crate::incident::Incident;
use crate::profile::RoadProfile;
use crate::slot::{SlotOfDay, SLOTS_PER_DAY};
use crate::store::HistoryStore;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_graph::{Graph, RoadId};

/// Standard normal sample via Box–Muller (keeps `rand_distr` out of the
/// dependency tree).
pub fn gaussian<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Configuration of the synthetic traffic process.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Days of history to generate (the paper collected 30).
    pub days: usize,
    /// Expected incidents per day across the whole network.
    pub incidents_per_day: f64,
    /// Incident severity range (peak fractional speed drop).
    pub severity_range: (f64, f64),
    /// Incident duration range in slots.
    pub duration_range: (usize, usize),
    /// Incident neighborhood radius in hops.
    pub incident_radius: usize,
    /// AR(1) coefficient of the within-day deviation process.
    pub temporal_persistence: f64,
    /// Diffusion rounds used to spatially correlate deviations.
    pub diffusion_rounds: usize,
    /// Neighbor mixing weight per diffusion round, in `[0, 1)`.
    pub diffusion_weight: f64,
    /// Fraction of roads made strongly volatile (weakly periodic).
    pub weak_periodicity_fraction: f64,
    /// Volatility multiplier applied to those weakly periodic roads.
    pub weak_periodicity_scale: f64,
    /// Rush-hour dip multiplier on weekend days (`day % 7 ∈ {5, 6}`); 1.0
    /// disables weekly seasonality (the library default — the paper's
    /// single per-slot model assumes it away), values < 1 lighten weekend
    /// congestion for the day-type-model extension.
    pub weekend_dip_scale: f64,
    /// Floor applied to generated speeds, km/h. Real 5-minute average
    /// feeds bottom out well above zero even in jams; a floor near zero
    /// makes APE-based metrics explode on incident roads.
    pub min_speed_kmh: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            days: 30,
            incidents_per_day: 4.0,
            severity_range: (0.3, 0.7),
            duration_range: (6, 24),
            incident_radius: 2,
            temporal_persistence: 0.85,
            diffusion_rounds: 3,
            diffusion_weight: 0.5,
            weak_periodicity_fraction: 0.2,
            weak_periodicity_scale: 4.0,
            weekend_dip_scale: 1.0,
            min_speed_kmh: 5.0,
            seed: 0xC0FFEE,
        }
    }
}

impl SynthConfig {
    /// A small, fast configuration for unit tests.
    pub fn small_test() -> Self {
        Self { days: 6, incidents_per_day: 1.0, ..Self::default() }
    }
}

/// Output of one generation run.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// The historical record (training data for RTF).
    pub history: HistoryStore,
    /// One extra held-out day: the "today" the online pipeline estimates.
    pub today: HistoryStore,
    /// Per-road profiles (ground-truth periodic means).
    pub profiles: Vec<RoadProfile>,
    /// Incidents injected into `today` (day index 0 within `today`).
    pub today_incidents: Vec<Incident>,
}

impl SynthDataset {
    /// Ground-truth speed of a road at a slot of the held-out day.
    pub fn ground_truth(&self, slot: SlotOfDay, road: RoadId) -> f64 {
        // `today` is fully observed by construction; the snapshot row
        // indexes directly without an Option round-trip.
        self.today.snapshot(0, slot)[road.index()]
    }

    /// Ground-truth snapshot of the whole network at a slot of today.
    pub fn ground_truth_snapshot(&self, slot: SlotOfDay) -> &[f64] {
        self.today.snapshot(0, slot)
    }
}

/// The generator: owns the graph reference, profiles and RNG state.
pub struct TrafficGenerator<'g> {
    graph: &'g Graph,
    config: SynthConfig,
    profiles: Vec<RoadProfile>,
    rng: StdRng,
}

impl<'g> TrafficGenerator<'g> {
    /// Creates a generator; road profiles (including which roads are weakly
    /// periodic) are drawn immediately from the seed.
    pub fn new(graph: &'g Graph, config: SynthConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let profiles = graph
            .roads()
            .iter()
            .map(|road| {
                let weak = rng.random_range(0.0..1.0) < config.weak_periodicity_fraction;
                let scale = if weak {
                    config.weak_periodicity_scale * rng.random_range(0.8..1.2)
                } else {
                    rng.random_range(0.6..1.4)
                };
                RoadProfile::for_class(road.class, scale)
            })
            .collect();
        Self { graph, config, profiles, rng }
    }

    /// Per-road profiles (exposed for evaluation and tests).
    pub fn profiles(&self) -> &[RoadProfile] {
        &self.profiles
    }

    /// Generates the full dataset: `config.days` of history plus one
    /// held-out day.
    pub fn generate(mut self) -> SynthDataset {
        let n = self.graph.num_roads();
        let days = self.config.days;
        let mut history = HistoryStore::new(n, days);
        for day in 0..days {
            let incidents = self.draw_incidents(day);
            self.fill_day(&mut history, day, &incidents);
        }
        let mut today = HistoryStore::new(n, 1);
        let today_incidents = self.draw_incidents(0);
        self.fill_day(&mut today, 0, &today_incidents);
        let today_incidents = today_incidents.into_iter().map(|(inc, _)| inc).collect();
        SynthDataset { history, today, profiles: self.profiles, today_incidents }
    }

    fn draw_incidents(&mut self, day: usize) -> Vec<(Incident, Vec<usize>)> {
        let n = self.graph.num_roads();
        // Deterministic count close to the configured rate: floor + Bernoulli
        // remainder.
        let base = self.config.incidents_per_day.floor() as usize;
        let extra = usize::from(
            self.rng.random_range(0.0..1.0) < self.config.incidents_per_day - base as f64,
        );
        (0..base + extra)
            .map(|_| {
                let (slo, shi) = self.config.severity_range;
                let (dlo, dhi) = self.config.duration_range;
                let inc = Incident {
                    road: RoadId::from(self.rng.random_range(0..n)),
                    day,
                    start: SlotOfDay(self.rng.random_range(0..SLOTS_PER_DAY as u16)),
                    duration_slots: self.rng.random_range(dlo..=dhi),
                    severity: self.rng.random_range(slo..shi),
                    radius_hops: self.config.incident_radius,
                };
                let hops = inc.hop_field(self.graph);
                (inc, hops)
            })
            .collect()
    }

    /// Fills one day of a store with the AR(1) + diffusion + incident
    /// process.
    fn fill_day(
        &mut self,
        store: &mut HistoryStore,
        day: usize,
        incidents: &[(Incident, Vec<usize>)],
    ) {
        let n = self.graph.num_roads();
        let mut z = vec![0.0_f64; n]; // standardized deviation state
        let mut eta = vec![0.0_f64; n];
        let mut smoothed = vec![0.0_f64; n];
        let ar = self.config.temporal_persistence;
        let innov = (1.0 - ar * ar).sqrt();
        let dip_scale = if day % 7 >= 5 { self.config.weekend_dip_scale } else { 1.0 };
        for slot in SlotOfDay::all() {
            // Fresh spatially-correlated innovations.
            for e in eta.iter_mut() {
                *e = gaussian(&mut self.rng);
            }
            for _ in 0..self.config.diffusion_rounds {
                for r in 0..n {
                    let nbrs = self.graph.neighbors(RoadId::from(r));
                    if nbrs.is_empty() {
                        smoothed[r] = eta[r];
                        continue;
                    }
                    let nbr_mean: f64 =
                        nbrs.iter().map(|(j, _)| eta[j.index()]).sum::<f64>() / nbrs.len() as f64;
                    let w = self.config.diffusion_weight;
                    smoothed[r] = (1.0 - w) * eta[r] + w * nbr_mean;
                }
                std::mem::swap(&mut eta, &mut smoothed);
            }
            let row = store.snapshot_mut(day, slot);
            for r in 0..n {
                z[r] = ar * z[r] + innov * eta[r];
                let profile = &self.profiles[r];
                let mut speed =
                    profile.expected_speed_scaled(slot, dip_scale) + profile.noise_std(slot) * z[r];
                for (inc, hops) in incidents {
                    speed *= inc.speed_multiplier(day, slot, hops[r]);
                }
                row[r] = speed.max(self.config.min_speed_kmh);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::{grid, path};
    use rtse_math::stats::{mean, pearson};

    fn dataset(days: usize, seed: u64) -> (rtse_graph::Graph, SynthDataset) {
        let g = grid(4, 5);
        let cfg = SynthConfig { days, seed, ..SynthConfig::small_test() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        (g, ds)
    }

    #[test]
    fn fully_populated_history() {
        let (g, ds) = dataset(3, 1);
        assert_eq!(ds.history.num_records(), g.num_roads() * 3 * SLOTS_PER_DAY);
        assert_eq!(ds.today.num_records(), g.num_roads() * SLOTS_PER_DAY);
    }

    #[test]
    fn deterministic_in_seed() {
        let (_, a) = dataset(2, 7);
        let (_, b) = dataset(2, 7);
        assert_eq!(a.history.snapshot(1, SlotOfDay(100)), b.history.snapshot(1, SlotOfDay(100)));
        let (_, c) = dataset(2, 8);
        assert_ne!(a.history.snapshot(1, SlotOfDay(100)), c.history.snapshot(1, SlotOfDay(100)));
    }

    #[test]
    fn speeds_positive_and_bounded() {
        let (_, ds) = dataset(2, 3);
        for rec in ds.history.records() {
            assert!(rec.speed_kmh >= 1.0);
            assert!(rec.speed_kmh < 200.0, "unreasonable speed {}", rec.speed_kmh);
        }
    }

    #[test]
    fn daily_mean_tracks_profile() {
        // With enough days, the per-slot mean approaches the profile curve.
        let g = path(6);
        let cfg =
            SynthConfig { days: 40, incidents_per_day: 0.0, seed: 5, ..SynthConfig::default() };
        let gen = TrafficGenerator::new(&g, cfg);
        let profiles = gen.profiles().to_vec();
        let ds = gen.generate();
        let slot = SlotOfDay::from_hm(12, 0);
        for r in 0..6 {
            let samples = ds.history.samples(RoadId::from(r), slot);
            let m = mean(&samples);
            let expect = profiles[r].expected_speed(slot);
            let tol = 4.0 * profiles[r].noise_std(slot) / (40.0_f64).sqrt() + 0.5;
            assert!(
                (m - expect).abs() < tol,
                "road {r}: sample mean {m} vs profile {expect} (tol {tol})"
            );
        }
    }

    #[test]
    fn adjacent_roads_positively_correlated() {
        let g = path(4);
        let cfg =
            SynthConfig { days: 60, incidents_per_day: 0.0, seed: 11, ..SynthConfig::default() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let slot = SlotOfDay::from_hm(9, 0);
        let (xs, ys) = ds.history.paired_samples(RoadId(1), RoadId(2), slot);
        let r_adj = pearson(&xs, &ys);
        let (xs, ys) = ds.history.paired_samples(RoadId(0), RoadId(3), slot);
        let r_far = pearson(&xs, &ys);
        assert!(r_adj > 0.2, "adjacent correlation too weak: {r_adj}");
        assert!(r_adj > r_far, "adjacent {r_adj} should exceed 3-hop {r_far}");
    }

    #[test]
    fn incidents_depress_today_speeds() {
        let g = grid(3, 3);
        let cfg = SynthConfig {
            days: 2,
            incidents_per_day: 1.0,
            severity_range: (0.69, 0.7),
            duration_range: (20, 24),
            seed: 13,
            ..SynthConfig::default()
        };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        assert!(!ds.today_incidents.is_empty());
        let inc = &ds.today_incidents[0];
        let mid = SlotOfDay((inc.start.index() + inc.duration_slots / 2).min(287) as u16);
        if mid.index() >= inc.start.index() + inc.duration_slots {
            return; // incident truncated by end of day; nothing to assert
        }
        let affected = ds.ground_truth(mid, inc.road);
        // Compare against the same road one hour before the incident.
        let before_idx = inc.start.index().saturating_sub(12);
        let before = ds.ground_truth(SlotOfDay(before_idx as u16), inc.road);
        assert!(
            affected < before,
            "incident speed {affected} should be below pre-incident {before}"
        );
    }

    #[test]
    fn weak_periodicity_fraction_increases_variance() {
        let g = grid(5, 5);
        let strong_cfg = SynthConfig {
            days: 1,
            weak_periodicity_fraction: 0.0,
            seed: 21,
            ..SynthConfig::default()
        };
        let weak_cfg = SynthConfig {
            days: 1,
            weak_periodicity_fraction: 1.0,
            seed: 21,
            ..SynthConfig::default()
        };
        let strong = TrafficGenerator::new(&g, strong_cfg);
        let weak = TrafficGenerator::new(&g, weak_cfg);
        let avg = |gen: &TrafficGenerator| {
            let stds: Vec<f64> = gen.profiles().iter().map(|p| p.noise_std_kmh).collect();
            mean(&stds)
        };
        assert!(avg(&weak) > 2.0 * avg(&strong));
    }
}
