//! Per-road daily speed profiles.
//!
//! The periodic component of the synthetic traffic: each road has an
//! expected speed curve over the day (free-flow speed with morning/evening
//! rush-hour dips) and a *periodicity strength* controlling how tightly
//! daily realizations hug that curve. Roads with weak periodicity are
//! exactly the roads the paper's OCS prioritizes for crowdsourcing.

use crate::slot::SlotOfDay;
use rtse_graph::RoadClass;

/// Gaussian bump `exp(-(x - center)^2 / (2 width^2))`.
fn bump(x: f64, center: f64, width: f64) -> f64 {
    let d = (x - center) / width;
    (-0.5 * d * d).exp()
}

/// The deterministic daily pattern and noise intensity of one road.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadProfile {
    /// Free-flow (uncongested) speed, km/h.
    pub free_flow_kmh: f64,
    /// Fractional speed drop at the morning rush peak (0..1).
    pub morning_dip: f64,
    /// Fractional speed drop at the evening rush peak (0..1).
    pub evening_dip: f64,
    /// Morning peak time in fractional hours.
    pub morning_peak_h: f64,
    /// Evening peak time in fractional hours.
    pub evening_peak_h: f64,
    /// Rush-hour width in hours.
    pub rush_width_h: f64,
    /// Standard deviation of day-to-day fluctuation, km/h. Small values =
    /// strong periodicity; large = weak periodicity.
    pub noise_std_kmh: f64,
}

impl RoadProfile {
    /// A canonical profile for a road class; `volatility_scale` multiplies
    /// the class's base noise level (the generator draws it per road).
    pub fn for_class(class: RoadClass, volatility_scale: f64) -> Self {
        let free_flow = class.free_flow_speed();
        let (m_dip, e_dip) = match class {
            RoadClass::Highway => (0.25, 0.30),
            RoadClass::Arterial => (0.45, 0.50),
            RoadClass::Secondary => (0.40, 0.45),
            RoadClass::Local => (0.30, 0.30),
        };
        Self {
            free_flow_kmh: free_flow,
            morning_dip: m_dip,
            evening_dip: e_dip,
            morning_peak_h: 8.5,
            evening_peak_h: 18.0,
            rush_width_h: 1.2,
            noise_std_kmh: 2.0 * class.volatility() * volatility_scale,
        }
    }

    /// Expected speed at a slot (the periodic mean the RTF's `μ_i^t` should
    /// recover).
    pub fn expected_speed(&self, slot: SlotOfDay) -> f64 {
        self.expected_speed_scaled(slot, 1.0)
    }

    /// Expected speed with the rush-hour dips scaled by `dip_scale` — the
    /// generator passes < 1 on weekend days (lighter commuter traffic).
    pub fn expected_speed_scaled(&self, slot: SlotOfDay, dip_scale: f64) -> f64 {
        let h = slot.frac_hour();
        let congestion = dip_scale
            * (self.morning_dip * bump(h, self.morning_peak_h, self.rush_width_h)
                + self.evening_dip * bump(h, self.evening_peak_h, self.rush_width_h));
        // Light night-time speed-up (empty roads).
        let night_boost = 0.05 * bump(h, 3.0, 2.5);
        self.free_flow_kmh * (1.0 - congestion + night_boost).max(0.1)
    }

    /// Noise standard deviation at a slot: fluctuations are larger around
    /// rush hours (congestion onset is what varies day to day).
    pub fn noise_std(&self, slot: SlotOfDay) -> f64 {
        let h = slot.frac_hour();
        let rush = bump(h, self.morning_peak_h, self.rush_width_h)
            + bump(h, self.evening_peak_h, self.rush_width_h);
        self.noise_std_kmh * (1.0 + 1.5 * rush)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rush_hour_is_slower_than_night() {
        let p = RoadProfile::for_class(RoadClass::Arterial, 1.0);
        let rush = p.expected_speed(SlotOfDay::from_hm(8, 30));
        let night = p.expected_speed(SlotOfDay::from_hm(3, 0));
        assert!(rush < night, "rush {rush} should be slower than night {night}");
        assert!(rush < p.free_flow_kmh);
    }

    #[test]
    fn speeds_always_positive() {
        for class in RoadClass::ALL {
            let p = RoadProfile::for_class(class, 3.0);
            for slot in SlotOfDay::all() {
                assert!(p.expected_speed(slot) > 0.0);
            }
        }
    }

    #[test]
    fn highway_faster_than_local_everywhere() {
        let hw = RoadProfile::for_class(RoadClass::Highway, 1.0);
        let local = RoadProfile::for_class(RoadClass::Local, 1.0);
        for slot in SlotOfDay::all() {
            assert!(hw.expected_speed(slot) > local.expected_speed(slot));
        }
    }

    #[test]
    fn noise_peaks_at_rush_hour() {
        let p = RoadProfile::for_class(RoadClass::Secondary, 1.0);
        let rush = p.noise_std(SlotOfDay::from_hm(8, 30));
        let calm = p.noise_std(SlotOfDay::from_hm(12, 0));
        assert!(rush > calm);
    }

    #[test]
    fn volatility_scale_scales_noise() {
        let base = RoadProfile::for_class(RoadClass::Secondary, 1.0);
        let double = RoadProfile::for_class(RoadClass::Secondary, 2.0);
        let slot = SlotOfDay::from_hm(10, 0);
        assert!((double.noise_std(slot) - 2.0 * base.noise_std(slot)).abs() < 1e-9);
    }
}
