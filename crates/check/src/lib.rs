//! Invariant contracts for the CrowdRTSE pipeline.
//!
//! The paper's data structures carry mathematical invariants that the rest
//! of the workspace silently relies on: RTF parameters are finite with
//! `σ > 0` and `ρ ∈ [0, 1]`; correlation tables are symmetric with a unit
//! diagonal and values in `[0, 1]`; CSR adjacency is sorted and in-bounds;
//! GSP outputs are finite, non-negative speeds; OCS selections respect the
//! budget and the redundancy threshold `θ`.
//!
//! This crate gives those invariants a home: a [`Validate`] trait each
//! pipeline crate implements for its boundary types, a structured
//! [`InvariantViolation`] error, and [`fail`] — the single sanctioned
//! abort point used when a crate compiled with its `validate` feature
//! detects a violated contract at a stage boundary. The pipeline crates
//! themselves are lint-enforced panic-free (`cargo xtask lint`); routing
//! every fail-closed abort through this crate keeps that policy auditable.
//!
//! The checks are wired into the pipeline behind each crate's default-off
//! `validate` cargo feature, so release binaries pay nothing.

use std::error::Error;
use std::fmt;

/// A violated contract: which invariant, and what was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable name of the invariant, e.g. `"rtf.sigma_positive"`.
    pub invariant: &'static str,
    /// Human-readable description of the observed violation.
    pub detail: String,
}

impl InvariantViolation {
    /// Builds a violation record.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        Self { invariant, detail: detail.into() }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated: {}", self.invariant, self.detail)
    }
}

impl Error for InvariantViolation {}

/// A type whose paper-level invariants can be checked.
///
/// Implementations live next to the type they validate (rtf, graph, gsp,
/// ocs) and must be side-effect free; a `validate` that allocates scratch
/// space is fine, one that mutates the value is not.
pub trait Validate {
    /// Checks every invariant, reporting the first violation found.
    fn validate(&self) -> Result<(), InvariantViolation>;
}

/// Returns `Ok(())` when `cond` holds, otherwise a violation built from
/// `detail` (evaluated lazily).
pub fn ensure(
    cond: bool,
    invariant: &'static str,
    detail: impl FnOnce() -> String,
) -> Result<(), InvariantViolation> {
    if cond {
        Ok(())
    } else {
        Err(InvariantViolation::new(invariant, detail()))
    }
}

/// Checks that every element of a slice is finite; the violation names the
/// offending index.
pub fn ensure_finite(xs: &[f64], invariant: &'static str) -> Result<(), InvariantViolation> {
    match xs.iter().position(|x| !x.is_finite()) {
        None => Ok(()),
        Some(i) => {
            Err(InvariantViolation::new(invariant, format!("entry {i} is non-finite ({})", xs[i])))
        }
    }
}

/// The sanctioned abort point for fail-closed validation at pipeline
/// boundaries. Library crates are lint-enforced panic-free; when a
/// `validate`-enabled build detects a broken contract it routes the abort
/// through here so the policy stays auditable.
pub fn fail(violation: &InvariantViolation) -> ! {
    panic!("{violation}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_passes_and_fails() {
        assert!(ensure(true, "x", || unreachable!("not evaluated")).is_ok());
        let err = ensure(false, "demo.bound", || "got 3".into()).expect_err("must fail");
        assert_eq!(err.invariant, "demo.bound");
        assert_eq!(err.detail, "got 3");
    }

    #[test]
    fn ensure_finite_reports_index() {
        assert!(ensure_finite(&[1.0, 2.0], "v").is_ok());
        let err = ensure_finite(&[1.0, f64::NAN], "v.finite").expect_err("NaN must fail");
        assert!(err.detail.contains("entry 1"));
        assert_eq!(err.invariant, "v.finite");
    }

    #[test]
    fn display_formats_both_parts() {
        let v = InvariantViolation::new("corr.symmetric", "corr(1,2)=0.5 but corr(2,1)=0.4");
        let s = v.to_string();
        assert!(s.contains("corr.symmetric"));
        assert!(s.contains("0.4"));
    }

    #[test]
    #[should_panic(expected = "invariant `demo` violated")]
    fn fail_panics_with_context() {
        fail(&InvariantViolation::new("demo", "boom"));
    }
}
