//! Adversarial worker behaviour and robust-aggregation analysis.
//!
//! Real crowdsourcing platforms see spam and manipulation; the paper
//! sidesteps this by buying multiple answers per road and aggregating.
//! This module injects controlled corruption into an answer stream so the
//! aggregation rules' robustness can be measured (and is exercised by the
//! quality tests below: the median survives corruption levels that break
//! the mean).

use crate::answer::Answer;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// How a corrupted answer misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Reports a constant regardless of the true speed (lazy spammer).
    Constant(f64),
    /// Multiplies the honest report (systematic exaggeration).
    Scale(f64),
    /// Reports a uniform random speed in the given range.
    Uniform(f64, f64),
}

/// Replaces a `fraction` of the answers (chosen pseudo-randomly by `seed`)
/// with corrupted reports. Returns the number of answers corrupted.
pub fn corrupt_answers(
    answers: &mut [Answer],
    fraction: f64,
    mode: Corruption,
    seed: u64,
) -> usize {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut corrupted = 0;
    for a in answers.iter_mut() {
        if rng.random_range(0.0..1.0) >= fraction {
            continue;
        }
        a.speed_kmh = match mode {
            Corruption::Constant(v) => v,
            Corruption::Scale(f) => (a.speed_kmh * f).max(0.0),
            Corruption::Uniform(lo, hi) => rng.random_range(lo..hi),
        };
        corrupted += 1;
    }
    corrupted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate_answers, AggregationRule};
    use crate::worker::WorkerId;
    use rtse_graph::RoadId;

    fn honest_answers(n: usize, truth: f64) -> Vec<Answer> {
        (0..n)
            .map(|i| Answer {
                worker: WorkerId(i as u32),
                road: RoadId(0),
                // Small deterministic spread around the truth.
                speed_kmh: truth + ((i as f64 * 0.7).sin()),
            })
            .collect()
    }

    #[test]
    fn corruption_respects_fraction_bounds() {
        let mut a = honest_answers(200, 40.0);
        let c = corrupt_answers(&mut a, 0.3, Corruption::Constant(0.0), 1);
        // Binomial(200, .3): allow a generous window.
        assert!((30..=90).contains(&c), "corrupted {c}");
        let mut b = honest_answers(10, 40.0);
        assert_eq!(corrupt_answers(&mut b, 0.0, Corruption::Constant(0.0), 1), 0);
        let mut d = honest_answers(10, 40.0);
        assert_eq!(corrupt_answers(&mut d, 1.0, Corruption::Constant(0.0), 1), 10);
    }

    #[test]
    fn median_resists_what_breaks_the_mean() {
        let truth = 40.0;
        let mut a = honest_answers(21, truth);
        corrupt_answers(&mut a, 0.25, Corruption::Constant(200.0), 7);
        let mean = aggregate_answers(&a, AggregationRule::Mean).unwrap();
        let median = aggregate_answers(&a, AggregationRule::Median).unwrap();
        assert!((median - truth).abs() < 2.0, "median off: {median}");
        assert!((mean - truth).abs() > 10.0, "mean should be wrecked: {mean}");
    }

    #[test]
    fn trimmed_mean_handles_single_outlier() {
        let truth = 40.0;
        let mut a = honest_answers(5, truth);
        a[2].speed_kmh = 500.0;
        let trimmed = aggregate_answers(&a, AggregationRule::TrimmedMean).unwrap();
        assert!((trimmed - truth).abs() < 2.0);
    }

    #[test]
    fn scale_corruption_never_negative() {
        let mut a = honest_answers(10, 3.0);
        corrupt_answers(&mut a, 1.0, Corruption::Scale(-2.0), 3);
        assert!(a.iter().all(|x| x.speed_kmh >= 0.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = honest_answers(50, 40.0);
        let mut b = honest_answers(50, 40.0);
        corrupt_answers(&mut a, 0.5, Corruption::Uniform(0.0, 100.0), 9);
        corrupt_answers(&mut b, 0.5, Corruption::Uniform(0.0, 100.0), 9);
        assert_eq!(a, b);
    }
}
