//! Crowdsourcing substrate for CrowdRTSE.
//!
//! The paper collects realtime speeds from human workers: a worker demands
//! a task, reports the speed at her current location from her mobile
//! device, and is paid one unit per accepted answer. The gMission platform
//! supplied worker locations in the paper's second evaluation; neither
//! gMission nor human workers are available offline, so this crate
//! simulates both (see DESIGN.md, substitutions):
//!
//! * [`worker`] — workers with a location, a per-worker reporting bias and
//!   noise level;
//! * [`mobility`] — a seeded random-walk mobility model over the road
//!   graph (worker distributions are time-variant, the very reason the
//!   paper rejects fixed observation sites);
//! * [`answer`] / [`aggregate`] — noisy answer generation and aggregation
//!   of the multiple answers bought per road;
//! * [`cost`] — per-road cost models: the uniform-random costs the paper's
//!   experiments use, and a variance-based estimator in the spirit of its
//!   refs [28, 29];
//! * [`campaign`] — running one crowdsourcing round for a selected road
//!   set against ground truth, with budget accounting;
//! * [`gmission`] — a scenario builder replicating the gMission dataset's
//!   shape (Table II: 50 connected queried roads, 30 worker roads ⊂ R^q,
//!   costs 1–10).

pub mod adversarial;
pub mod aggregate;
pub mod answer;
pub mod campaign;
pub mod cost;
pub mod gmission;
pub mod mobility;
pub mod worker;

pub use adversarial::{corrupt_answers, Corruption};
pub use aggregate::{aggregate_answers, AggregationRule};
pub use answer::Answer;
pub use campaign::{CampaignOutcome, CrowdCampaign};
pub use cost::{uniform_costs, variance_based_costs, CostRange};
pub use gmission::{GMissionScenario, GMissionSpec};
pub use mobility::WorkerPool;
pub use worker::{Worker, WorkerId};
