//! Workers and their reporting model.

use rtse_graph::RoadId;

/// Identifier of a crowdsourcing worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The id as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// One worker: current location plus a persistent reporting quality model.
///
/// Mobile-device speed readings are noisy and individually biased (GPS
/// error, lane position, device class); the bias is drawn once per worker
/// and the noise freshly per answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Worker {
    /// The worker's id.
    pub id: WorkerId,
    /// Road the worker is currently on.
    pub location: RoadId,
    /// Persistent additive reporting bias, km/h.
    pub bias_kmh: f64,
    /// Standard deviation of per-answer noise, km/h.
    pub noise_std_kmh: f64,
}

impl Worker {
    /// A perfectly accurate worker (test convenience).
    pub fn perfect(id: WorkerId, location: RoadId) -> Self {
        Self { id, location, bias_kmh: 0.0, noise_std_kmh: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_id_display() {
        assert_eq!(WorkerId(7).to_string(), "w7");
        assert_eq!(WorkerId(7).index(), 7);
    }

    #[test]
    fn perfect_worker_has_no_error_terms() {
        let w = Worker::perfect(WorkerId(0), RoadId(3));
        assert_eq!(w.bias_kmh, 0.0);
        assert_eq!(w.noise_std_kmh, 0.0);
        assert_eq!(w.location, RoadId(3));
    }
}
