//! gMission-shaped scenario builder.
//!
//! The paper's second dataset comes from the gMission spatial
//! crowdsourcing platform (Table II): 50 queried roads forming a mutually
//! connected sub-component, 30 worker-covered roads with `R^w ⊂ R^q`,
//! uniform costs 1–10, budgets 10–50. This module reproduces that shape on
//! any graph.

use crate::cost::{uniform_costs, CostRange};
use crate::mobility::WorkerPool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_graph::{components::grow_connected_subset, Graph, RoadId};

/// Parameters of a gMission-style scenario.
#[derive(Debug, Clone, Copy)]
pub struct GMissionSpec {
    /// Size of the connected queried set (paper: 50).
    pub num_queried: usize,
    /// Number of worker-covered roads (paper: 30), drawn from the queried
    /// set.
    pub num_worker_roads: usize,
    /// Workers spawned across those roads.
    pub num_workers: usize,
    /// Cost range (paper: 1..10).
    pub cost_range: CostRange,
    /// Worker bias standard deviation, km/h.
    pub worker_bias_std: f64,
    /// Worker per-answer noise range, km/h.
    pub worker_noise: (f64, f64),
    /// Seed for all random choices.
    pub seed: u64,
}

impl Default for GMissionSpec {
    fn default() -> Self {
        Self {
            num_queried: 50,
            num_worker_roads: 30,
            num_workers: 60,
            cost_range: CostRange::C1,
            worker_bias_std: 1.0,
            worker_noise: (0.5, 2.5),
            seed: 0x6A15,
        }
    }
}

/// A realized scenario.
#[derive(Debug, Clone)]
pub struct GMissionScenario {
    /// The queried roads `R^q` (connected).
    pub queried: Vec<RoadId>,
    /// The worker-covered roads `R^w ⊂ R^q`.
    pub worker_roads: Vec<RoadId>,
    /// The worker pool, confined to `worker_roads`.
    pub pool: WorkerPool,
    /// Per-road costs (full network indexing).
    pub costs: Vec<u32>,
}

impl GMissionScenario {
    /// Builds the scenario on a graph, seeding the queried component at a
    /// random road with a large-enough component.
    ///
    /// # Panics
    /// Panics when the graph has no connected component of
    /// `spec.num_queried` roads, or when `num_worker_roads > num_queried`.
    pub fn build(graph: &Graph, spec: &GMissionSpec) -> Self {
        assert!(spec.num_worker_roads <= spec.num_queried, "gMission requires R^w ⊂ R^q");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        // Find a seed road whose component is large enough (bounded
        // retries keep this deterministic).
        let queried = (0..graph.num_roads())
            .map(|_| RoadId::from(rng.random_range(0..graph.num_roads())))
            .find_map(|seed| grow_connected_subset(graph, seed, spec.num_queried))
            .unwrap_or_else(|| panic!("no connected component of {} roads", spec.num_queried));
        // Worker roads: a random subset of the queried roads.
        let mut shuffled = queried.clone();
        // Fisher–Yates with the scenario RNG.
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut worker_roads: Vec<RoadId> = shuffled[..spec.num_worker_roads].to_vec();
        worker_roads.sort();
        let pool = WorkerPool::spawn_on_roads(
            graph,
            &worker_roads,
            spec.num_workers,
            spec.worker_bias_std,
            spec.worker_noise,
            spec.seed ^ 0xABCD,
        );
        let costs = uniform_costs(graph.num_roads(), spec.cost_range, spec.seed ^ 0x1234);
        Self { queried, worker_roads, pool, costs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::hong_kong_like;
    use rtse_graph::hop_distances;

    #[test]
    fn scenario_matches_paper_shape() {
        let g = hong_kong_like(607, 1);
        let spec = GMissionSpec::default();
        let s = GMissionScenario::build(&g, &spec);
        assert_eq!(s.queried.len(), 50);
        assert_eq!(s.worker_roads.len(), 30);
        // R^w ⊂ R^q.
        assert!(s.worker_roads.iter().all(|r| s.queried.contains(r)));
        // The queried set is connected: every queried road reachable from
        // the first within the induced subgraph. Cheap check: hop distance
        // in the full graph is finite (necessary condition) and the set was
        // grown by BFS (sufficient by construction).
        let d = hop_distances(&g, &[s.queried[0]]);
        assert!(s.queried.iter().all(|r| d[r.index()] != usize::MAX));
        // Workers sit on worker roads only.
        assert!(s.pool.workers().iter().all(|w| s.worker_roads.contains(&w.location)));
        // Costs cover the whole network in 1..=10.
        assert_eq!(s.costs.len(), 607);
        assert!(s.costs.iter().all(|&c| (1..=10).contains(&c)));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = hong_kong_like(200, 2);
        let spec = GMissionSpec { num_queried: 30, num_worker_roads: 10, ..Default::default() };
        let a = GMissionScenario::build(&g, &spec);
        let b = GMissionScenario::build(&g, &spec);
        assert_eq!(a.queried, b.queried);
        assert_eq!(a.worker_roads, b.worker_roads);
        let c = GMissionScenario::build(&g, &GMissionSpec { seed: 99, ..spec });
        assert_ne!(a.worker_roads, c.worker_roads);
    }

    #[test]
    #[should_panic(expected = "R^w ⊂ R^q")]
    fn worker_roads_cannot_exceed_queried() {
        let g = hong_kong_like(100, 3);
        let spec = GMissionSpec { num_queried: 10, num_worker_roads: 20, ..Default::default() };
        GMissionScenario::build(&g, &spec);
    }
}
