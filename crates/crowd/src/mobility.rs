//! Worker pool with random-walk mobility.
//!
//! Worker distributions are time-variant — the paper's core argument
//! against fixed observation sites. The pool spawns workers at seeded
//! random roads and moves each to a uniformly random neighbor with a
//! configurable probability per step.

use crate::worker::{Worker, WorkerId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rtse_data::synth::gaussian;
use rtse_graph::{Graph, RoadId};

/// A population of workers over a road graph.
///
/// ```
/// use rtse_crowd::WorkerPool;
/// use rtse_graph::generators;
///
/// let graph = generators::grid(3, 3);
/// let mut pool = WorkerPool::spawn(&graph, 12, 0.5, (0.3, 1.0), 42);
/// let before = pool.covered_roads();
/// assert!(!before.is_empty());
/// pool.step(&graph); // workers wander
/// assert!(pool.workers().iter().all(|w| w.location.index() < graph.num_roads()));
/// ```
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: Vec<Worker>,
    rng: SmallRng,
    /// Probability that a worker moves at each [`WorkerPool::step`].
    pub move_probability: f64,
}

impl WorkerPool {
    /// Spawns `count` workers at uniformly random roads; biases are drawn
    /// `N(0, bias_std)` and per-worker noise levels uniformly in
    /// `noise_range`.
    pub fn spawn(
        graph: &Graph,
        count: usize,
        bias_std: f64,
        noise_range: (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(graph.num_roads() > 0, "cannot place workers on an empty graph");
        let mut rng = SmallRng::seed_from_u64(seed);
        let workers = (0..count)
            .map(|i| Worker {
                id: WorkerId(i as u32),
                location: RoadId::from(rng.random_range(0..graph.num_roads())),
                bias_kmh: gaussian(&mut rng) * bias_std,
                noise_std_kmh: rng.random_range(noise_range.0..=noise_range.1),
            })
            .collect();
        Self { workers, rng, move_probability: 0.5 }
    }

    /// Spawns workers restricted to the given roads (the gMission scenario
    /// confines workers to the queried sub-component).
    pub fn spawn_on_roads(
        graph: &Graph,
        roads: &[RoadId],
        count: usize,
        bias_std: f64,
        noise_range: (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(!roads.is_empty(), "need at least one road to place workers");
        let mut pool = Self::spawn(graph, count, bias_std, noise_range, seed);
        for w in &mut pool.workers {
            let pick = pool.rng.random_range(0..roads.len());
            w.location = roads[pick];
        }
        pool
    }

    /// The workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Distinct roads currently hosting at least one worker — the paper's
    /// `R^w`, i.e. the OCS candidate set. Sorted ascending.
    pub fn covered_roads(&self) -> Vec<RoadId> {
        let mut roads: Vec<RoadId> = self.workers.iter().map(|w| w.location).collect();
        roads.sort();
        roads.dedup();
        roads
    }

    /// Workers currently on a road.
    pub fn workers_on(&self, road: RoadId) -> Vec<&Worker> {
        self.workers.iter().filter(|w| w.location == road).collect()
    }

    /// Advances the mobility model one step: each worker moves to a random
    /// neighbor with probability [`WorkerPool::move_probability`] (workers on
    /// isolated roads stay put).
    pub fn step(&mut self, graph: &Graph) {
        for w in &mut self.workers {
            if self.rng.random_range(0.0..1.0) >= self.move_probability {
                continue;
            }
            let nbrs = graph.neighbors(w.location);
            if nbrs.is_empty() {
                continue;
            }
            let pick = self.rng.random_range(0..nbrs.len());
            w.location = nbrs[pick].0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::{grid, path};

    #[test]
    fn spawn_is_deterministic_per_seed() {
        let g = grid(4, 4);
        let a = WorkerPool::spawn(&g, 10, 1.0, (0.5, 2.0), 7);
        let b = WorkerPool::spawn(&g, 10, 1.0, (0.5, 2.0), 7);
        assert_eq!(a.workers(), b.workers());
        let c = WorkerPool::spawn(&g, 10, 1.0, (0.5, 2.0), 8);
        assert_ne!(a.workers(), c.workers());
    }

    #[test]
    fn covered_roads_dedup_sorted() {
        let g = path(3);
        let mut pool = WorkerPool::spawn(&g, 5, 0.0, (0.1, 0.2), 1);
        // Force all workers to the same road.
        for w in &mut pool.workers {
            w.location = RoadId(1);
        }
        assert_eq!(pool.covered_roads(), vec![RoadId(1)]);
        assert_eq!(pool.workers_on(RoadId(1)).len(), 5);
        assert!(pool.workers_on(RoadId(0)).is_empty());
    }

    #[test]
    fn step_keeps_workers_on_graph() {
        let g = grid(3, 3);
        let mut pool = WorkerPool::spawn(&g, 20, 1.0, (0.5, 1.5), 3);
        for _ in 0..50 {
            pool.step(&g);
            for w in pool.workers() {
                assert!(w.location.index() < g.num_roads());
            }
        }
    }

    #[test]
    fn step_moves_some_workers() {
        let g = grid(3, 3);
        let mut pool = WorkerPool::spawn(&g, 20, 1.0, (0.5, 1.5), 3);
        let before: Vec<RoadId> = pool.workers().iter().map(|w| w.location).collect();
        pool.step(&g);
        let after: Vec<RoadId> = pool.workers().iter().map(|w| w.location).collect();
        assert_ne!(before, after, "with p=0.5 and 20 workers someone should move");
    }

    #[test]
    fn isolated_workers_stay() {
        let mut b = rtse_graph::GraphBuilder::new();
        b.add_road(rtse_graph::RoadClass::Local, (0.0, 0.0));
        let g = b.build();
        let mut pool = WorkerPool::spawn(&g, 3, 0.0, (0.1, 0.2), 1);
        pool.move_probability = 1.0;
        pool.step(&g);
        assert!(pool.workers().iter().all(|w| w.location == RoadId(0)));
    }

    #[test]
    fn spawn_on_roads_confines_workers() {
        let g = grid(4, 4);
        let allowed = [RoadId(3), RoadId(7)];
        let pool = WorkerPool::spawn_on_roads(&g, &allowed, 12, 0.5, (0.5, 1.0), 9);
        assert!(pool.workers().iter().all(|w| allowed.contains(&w.location)));
    }
}
