//! Aggregation of the multiple answers bought per road.
//!
//! "To obtain a more accurate result, multiple answers are required to be
//! collected and integrated for each crowdsourced road" (Section V-A). The
//! aggregation rule is pluggable; the mean is the default, the median and
//! trimmed mean resist outlier workers.

use crate::answer::Answer;

/// How a road's answers are combined into one speed estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationRule {
    /// Arithmetic mean of all answers.
    #[default]
    Mean,
    /// Median (outlier-robust).
    Median,
    /// Mean after dropping the lowest and highest answer (needs ≥ 3
    /// answers; falls back to the mean otherwise).
    TrimmedMean,
}

/// Aggregates a road's answers; `None` when there are no answers.
pub fn aggregate_answers(answers: &[Answer], rule: AggregationRule) -> Option<f64> {
    if answers.is_empty() {
        return None;
    }
    let mut speeds: Vec<f64> = answers.iter().map(|a| a.speed_kmh).collect();
    Some(match rule {
        AggregationRule::Mean => mean(&speeds),
        AggregationRule::Median => {
            speeds.sort_by(|a, b| a.partial_cmp(b).expect("speeds are finite"));
            let n = speeds.len();
            if n % 2 == 1 {
                speeds[n / 2]
            } else {
                0.5 * (speeds[n / 2 - 1] + speeds[n / 2])
            }
        }
        AggregationRule::TrimmedMean => {
            if speeds.len() < 3 {
                mean(&speeds)
            } else {
                speeds.sort_by(|a, b| a.partial_cmp(b).expect("speeds are finite"));
                mean(&speeds[1..speeds.len() - 1])
            }
        }
    })
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerId;
    use rtse_graph::RoadId;

    fn answers(speeds: &[f64]) -> Vec<Answer> {
        speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Answer { worker: WorkerId(i as u32), road: RoadId(0), speed_kmh: s })
            .collect()
    }

    #[test]
    fn empty_answers_none() {
        assert_eq!(aggregate_answers(&[], AggregationRule::Mean), None);
    }

    #[test]
    fn mean_hand_value() {
        let a = answers(&[10.0, 20.0, 30.0]);
        assert_eq!(aggregate_answers(&a, AggregationRule::Mean), Some(20.0));
    }

    #[test]
    fn median_odd_and_even() {
        let odd = answers(&[30.0, 10.0, 20.0]);
        assert_eq!(aggregate_answers(&odd, AggregationRule::Median), Some(20.0));
        let even = answers(&[10.0, 20.0, 30.0, 100.0]);
        assert_eq!(aggregate_answers(&even, AggregationRule::Median), Some(25.0));
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let a = answers(&[0.0, 20.0, 22.0, 21.0, 100.0]);
        assert_eq!(aggregate_answers(&a, AggregationRule::TrimmedMean), Some(21.0));
        // Fewer than 3 answers: plain mean.
        let b = answers(&[10.0, 30.0]);
        assert_eq!(aggregate_answers(&b, AggregationRule::TrimmedMean), Some(20.0));
    }

    #[test]
    fn median_resists_outlier_better_than_mean() {
        let a = answers(&[40.0, 41.0, 39.0, 40.5, 500.0]);
        let mean = aggregate_answers(&a, AggregationRule::Mean).unwrap();
        let median = aggregate_answers(&a, AggregationRule::Median).unwrap();
        assert!((median - 40.0).abs() < 1.0);
        assert!(mean > 100.0);
    }
}
