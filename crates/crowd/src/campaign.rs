//! Running one crowdsourcing round.
//!
//! Given the OCS selection, the campaign buys `c_i` answers for each
//! selected road from the workers present there and aggregates them into
//! the observation set GSP consumes. Payment is one unit per answer
//! (Section III-A), so a road's spend equals its cost.

use crate::aggregate::{aggregate_answers, AggregationRule};
use crate::answer::Answer;
use crate::mobility::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtse_graph::RoadId;

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrowdCampaign {
    /// Aggregation rule for multi-answer roads.
    pub rule: AggregationRule,
    /// Probability that a present worker accepts the task (the paper notes
    /// forced travel "reduces workers' willingness"; even in-place tasks
    /// see declines). 1.0 = everyone accepts.
    pub acceptance_rate: f64,
    /// RNG seed for answer noise and acceptance draws.
    pub seed: u64,
}

impl Default for CrowdCampaign {
    fn default() -> Self {
        Self { rule: AggregationRule::Mean, acceptance_rate: 1.0, seed: 0xFEED }
    }
}

/// Result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Aggregated observation per selected road (input order preserved;
    /// roads with no workers are dropped).
    pub observations: Vec<(RoadId, f64)>,
    /// Raw answers collected (diagnostics).
    pub answers: Vec<Answer>,
    /// Total payment units disbursed (one per answer).
    pub paid: u32,
    /// Selected roads that had no worker to answer (should be empty when
    /// the selection honored `R^c ⊆ R^w`).
    pub unanswered: Vec<RoadId>,
}

impl CrowdCampaign {
    /// Collects `costs[r]` answers for each road in `selection` from the
    /// workers on it. When a road hosts fewer workers than its cost, the
    /// present workers answer repeatedly (a worker may re-measure; each
    /// answer is still paid).
    ///
    /// `true_speeds[r]` is the ground-truth snapshot the simulated workers
    /// observe.
    pub fn run(
        &self,
        pool: &WorkerPool,
        selection: &[RoadId],
        costs: &[u32],
        true_speeds: &[f64],
    ) -> CampaignOutcome {
        assert!(
            (0.0..=1.0).contains(&self.acceptance_rate),
            "acceptance_rate must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut observations = Vec::with_capacity(selection.len());
        let mut all_answers = Vec::new();
        let mut paid = 0u32;
        let mut unanswered = Vec::new();
        for &road in selection {
            let workers: Vec<_> = pool
                .workers_on(road)
                .into_iter()
                .filter(|_| {
                    self.acceptance_rate >= 1.0
                        || rand::RngExt::random_range(&mut rng, 0.0..1.0) < self.acceptance_rate
                })
                .collect();
            if workers.is_empty() {
                unanswered.push(road);
                continue;
            }
            let needed = costs[road.index()].max(1) as usize;
            let mut road_answers = Vec::with_capacity(needed);
            for k in 0..needed {
                let w = workers[k % workers.len()];
                road_answers.push(Answer::simulate(w, true_speeds[road.index()], &mut rng));
            }
            paid += road_answers.len() as u32;
            if let Some(speed) = aggregate_answers(&road_answers, self.rule) {
                observations.push((road, speed));
            }
            all_answers.extend(road_answers);
        }
        CampaignOutcome { observations, answers: all_answers, paid, unanswered }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::grid;

    fn setup() -> (rtse_graph::Graph, WorkerPool, Vec<f64>) {
        let g = grid(3, 3);
        let pool = WorkerPool::spawn(&g, 30, 0.5, (0.2, 1.0), 11);
        let truth: Vec<f64> = (0..g.num_roads()).map(|i| 30.0 + i as f64).collect();
        (g, pool, truth)
    }

    #[test]
    fn observations_close_to_truth() {
        let (_g, pool, truth) = setup();
        let selection = pool.covered_roads();
        let costs = vec![5u32; truth.len()];
        let out = CrowdCampaign::default().run(&pool, &selection, &costs, &truth);
        assert!(out.unanswered.is_empty());
        assert_eq!(out.observations.len(), selection.len());
        for (road, speed) in &out.observations {
            let t = truth[road.index()];
            assert!((speed - t).abs() < 4.0, "road {road}: {speed} vs {t}");
        }
    }

    #[test]
    fn payment_matches_answer_count() {
        let (_g, pool, truth) = setup();
        let selection = pool.covered_roads();
        let costs = vec![3u32; truth.len()];
        let out = CrowdCampaign::default().run(&pool, &selection, &costs, &truth);
        assert_eq!(out.paid as usize, out.answers.len());
        assert_eq!(out.paid, 3 * selection.len() as u32);
    }

    #[test]
    fn roads_without_workers_are_reported() {
        let (g, pool, truth) = setup();
        let covered = pool.covered_roads();
        let empty_road = g.road_ids().find(|r| !covered.contains(r));
        if let Some(road) = empty_road {
            let costs = vec![1u32; truth.len()];
            let out = CrowdCampaign::default().run(&pool, &[road], &costs, &truth);
            assert_eq!(out.unanswered, vec![road]);
            assert!(out.observations.is_empty());
            assert_eq!(out.paid, 0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (_g, pool, truth) = setup();
        let selection = pool.covered_roads();
        let costs = vec![2u32; truth.len()];
        let c = CrowdCampaign { seed: 1, ..Default::default() };
        let a = c.run(&pool, &selection, &costs, &truth);
        let b = c.run(&pool, &selection, &costs, &truth);
        assert_eq!(a.observations, b.observations);
    }

    #[test]
    fn more_answers_reduce_error() {
        let (_g, pool, truth) = setup();
        let selection = pool.covered_roads();
        let err = |cost: u32, seed: u64| {
            let costs = vec![cost; truth.len()];
            let out =
                CrowdCampaign { seed, ..Default::default() }.run(&pool, &selection, &costs, &truth);
            out.observations.iter().map(|(r, s)| (s - truth[r.index()]).abs()).sum::<f64>()
                / out.observations.len() as f64
        };
        // Average over several seeds to avoid flakiness.
        let few: f64 = (0..8).map(|s| err(1, s)).sum::<f64>() / 8.0;
        let many: f64 = (0..8).map(|s| err(9, s)).sum::<f64>() / 8.0;
        assert!(many < few, "9 answers ({many}) should beat 1 ({few})");
    }
}

#[cfg(test)]
mod acceptance_tests {
    use super::*;
    use rtse_graph::generators::grid;

    #[test]
    fn zero_acceptance_answers_nothing() {
        let g = grid(3, 3);
        let pool = WorkerPool::spawn(&g, 30, 0.0, (0.1, 0.3), 11);
        let truth: Vec<f64> = vec![40.0; g.num_roads()];
        let costs = vec![2u32; g.num_roads()];
        let selection = pool.covered_roads();
        let campaign = CrowdCampaign { acceptance_rate: 0.0, ..Default::default() };
        let out = campaign.run(&pool, &selection, &costs, &truth);
        assert!(out.observations.is_empty());
        assert_eq!(out.paid, 0);
        assert_eq!(out.unanswered.len(), selection.len());
    }

    #[test]
    fn partial_acceptance_loses_some_roads() {
        let g = grid(3, 3);
        let pool = WorkerPool::spawn(&g, 12, 0.0, (0.1, 0.3), 11);
        let truth: Vec<f64> = vec![40.0; g.num_roads()];
        let costs = vec![1u32; g.num_roads()];
        let selection = pool.covered_roads();
        let full = CrowdCampaign { acceptance_rate: 1.0, ..Default::default() }
            .run(&pool, &selection, &costs, &truth);
        let partial = CrowdCampaign { acceptance_rate: 0.3, ..Default::default() }
            .run(&pool, &selection, &costs, &truth);
        assert!(partial.observations.len() <= full.observations.len());
        assert!(partial.paid <= full.paid);
        assert_eq!(partial.observations.len() + partial.unanswered.len(), selection.len());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_acceptance_rate_rejected() {
        let g = grid(2, 2);
        let pool = WorkerPool::spawn(&g, 2, 0.0, (0.1, 0.2), 1);
        let truth = vec![30.0; 4];
        let costs = vec![1u32; 4];
        CrowdCampaign { acceptance_rate: 1.5, ..Default::default() }.run(
            &pool,
            &pool.covered_roads(),
            &costs,
            &truth,
        );
    }
}
