//! Per-road crowdsourcing cost models.
//!
//! The cost of a road is "the minimum number of its required answers"
//! (Section V-A). The paper's experiments draw costs uniformly at random
//! (their data lacks the auxiliary signals a real deployment would use);
//! [`uniform_costs`] reproduces that. [`variance_based_costs`] implements
//! the more principled estimator the paper points at (refs [28, 29]):
//! buy enough answers that the aggregated mean's confidence interval
//! shrinks below a tolerance, given the road's historical answer variance.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_graph::{Graph, RoadClass};

/// Inclusive cost range, e.g. the paper's `C1 = 1..10` and `C2 = 1..5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRange {
    /// Minimum cost (≥ 1).
    pub lo: u32,
    /// Maximum cost (≥ lo).
    pub hi: u32,
}

impl CostRange {
    /// The paper's wide range `C1 = 1..10`.
    pub const C1: CostRange = CostRange { lo: 1, hi: 10 };
    /// The paper's narrow range `C2 = 1..5`.
    pub const C2: CostRange = CostRange { lo: 1, hi: 5 };
    /// Unit costs (the trivial-case setting of Remark 2).
    pub const UNIT: CostRange = CostRange { lo: 1, hi: 1 };
}

/// Draws one cost per road uniformly from `range`, deterministic in `seed`.
pub fn uniform_costs(num_roads: usize, range: CostRange, seed: u64) -> Vec<u32> {
    assert!(range.lo >= 1 && range.hi >= range.lo, "invalid cost range {range:?}");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_roads).map(|_| rng.random_range(range.lo..=range.hi)).collect()
}

/// Variance-based cost: the number of answers needed so that a mean of
/// that many answers has standard error below `tolerance_kmh`, i.e.
/// `c = ceil((σ_answers / tolerance)²)`, clamped to `range`.
///
/// `answer_std[r]` is the historical per-answer standard deviation for
/// road `r`; highways (stable speeds) come out cheap, volatile secondary
/// roads expensive — exactly the paper's motivating example.
pub fn variance_based_costs(answer_std: &[f64], tolerance_kmh: f64, range: CostRange) -> Vec<u32> {
    assert!(tolerance_kmh > 0.0, "tolerance must be positive");
    answer_std
        .iter()
        .map(|&s| {
            let c = (s / tolerance_kmh).powi(2).ceil() as u32;
            c.clamp(range.lo, range.hi)
        })
        .collect()
}

/// Synthesizes per-road answer standard deviations from road classes (for
/// experiments without a history of real answers): class volatility scaled
/// to km/h.
pub fn class_answer_stds(graph: &Graph, base_std_kmh: f64) -> Vec<f64> {
    graph.roads().iter().map(|r| base_std_kmh * r.class.volatility()).collect()
}

/// Convenience predicate used in tests and examples: highways should never
/// cost more than secondary roads under the variance-based model.
pub fn class_cost(class: RoadClass, base_std_kmh: f64, tolerance: f64, range: CostRange) -> u32 {
    let s = base_std_kmh * class.volatility();
    ((s / tolerance).powi(2).ceil() as u32).clamp(range.lo, range.hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::hong_kong_like;

    #[test]
    fn uniform_costs_in_range_and_deterministic() {
        let a = uniform_costs(500, CostRange::C1, 3);
        let b = uniform_costs(500, CostRange::C1, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| (1..=10).contains(&c)));
        // Both endpoints appear in 500 draws.
        assert!(a.contains(&1) && a.contains(&10));
    }

    #[test]
    fn unit_range_yields_all_ones() {
        let c = uniform_costs(10, CostRange::UNIT, 1);
        assert!(c.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "invalid cost range")]
    fn zero_cost_range_rejected() {
        uniform_costs(5, CostRange { lo: 0, hi: 3 }, 1);
    }

    #[test]
    fn variance_based_hand_values() {
        // σ = 4, tol = 2 → (4/2)² = 4 answers.
        let c = variance_based_costs(&[4.0, 1.0, 20.0], 2.0, CostRange::C1);
        assert_eq!(c, vec![4, 1, 10]); // last clamped to hi
    }

    #[test]
    fn highways_cheaper_than_secondary() {
        let g = hong_kong_like(100, 5);
        let stds = class_answer_stds(&g, 3.0);
        let costs = variance_based_costs(&stds, 1.5, CostRange::C1);
        let avg = |class: RoadClass| {
            let (sum, n) = g
                .roads()
                .iter()
                .filter(|r| r.class == class)
                .fold((0u32, 0u32), |(s, n), r| (s + costs[r.id.index()], n + 1));
            sum as f64 / n.max(1) as f64
        };
        assert!(avg(RoadClass::Highway) < avg(RoadClass::Secondary));
    }

    #[test]
    fn class_cost_consistent_with_vector_path() {
        let c = class_cost(RoadClass::Highway, 3.0, 1.5, CostRange::C1);
        let v = variance_based_costs(&[3.0 * RoadClass::Highway.volatility()], 1.5, CostRange::C1);
        assert_eq!(c, v[0]);
    }
}
