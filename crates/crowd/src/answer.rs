//! Answer generation: what a worker reports.

use crate::worker::Worker;
use rand::rngs::StdRng;
use rtse_data::synth::gaussian;
use rtse_graph::RoadId;

/// One submitted answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The reporting worker.
    pub worker: crate::worker::WorkerId,
    /// Road the answer is about (the worker's location at answer time).
    pub road: RoadId,
    /// Reported speed, km/h (non-negative).
    pub speed_kmh: f64,
}

impl Answer {
    /// Simulates one answer: truth plus the worker's bias plus fresh
    /// Gaussian noise, floored at zero (devices don't report negative
    /// speeds).
    pub fn simulate(worker: &Worker, true_speed: f64, rng: &mut StdRng) -> Self {
        let reported =
            (true_speed + worker.bias_kmh + gaussian(rng) * worker.noise_std_kmh).max(0.0);
        Self { worker: worker.id, road: worker.location, speed_kmh: reported }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerId;
    use rand::SeedableRng;

    #[test]
    fn perfect_worker_reports_truth() {
        let w = Worker::perfect(WorkerId(0), RoadId(2));
        let mut rng = StdRng::seed_from_u64(1);
        let a = Answer::simulate(&w, 47.5, &mut rng);
        assert_eq!(a.speed_kmh, 47.5);
        assert_eq!(a.road, RoadId(2));
        assert_eq!(a.worker, WorkerId(0));
    }

    #[test]
    fn bias_shifts_reports() {
        let w = Worker { id: WorkerId(1), location: RoadId(0), bias_kmh: 5.0, noise_std_kmh: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let a = Answer::simulate(&w, 40.0, &mut rng);
        assert_eq!(a.speed_kmh, 45.0);
    }

    #[test]
    fn reports_never_negative() {
        let w =
            Worker { id: WorkerId(2), location: RoadId(0), bias_kmh: -50.0, noise_std_kmh: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let a = Answer::simulate(&w, 10.0, &mut rng);
        assert_eq!(a.speed_kmh, 0.0);
    }

    #[test]
    fn noise_varies_between_answers() {
        let w = Worker { id: WorkerId(3), location: RoadId(0), bias_kmh: 0.0, noise_std_kmh: 3.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let a = Answer::simulate(&w, 40.0, &mut rng);
        let b = Answer::simulate(&w, 40.0, &mut rng);
        assert_ne!(a.speed_kmh, b.speed_kmh);
    }
}
