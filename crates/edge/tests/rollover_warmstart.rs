//! Warm-start seeding across a slot rollover.
//!
//! Delta re-propagation is only sound within one slot: the previous
//! round's fixed point belongs to that slot's model parameters, so the
//! first round after a [`SlotClock`] boundary must propagate cold. The
//! serving layer enforces this structurally — [`AnswerCache`] cells are
//! per-slot, so the rolled-over slot's compute closure receives no stale
//! seed no matter how warm the previous slot is. This test rolls a
//! deterministic clock across a boundary and pins exactly that: within a
//! slot, recomputes are seeded (the delta path); across the boundary,
//! the first round of the new slot is a full propagation fallback.

use rtse_edge::{PrewarmConfig, SlotClock};
use rtse_graph::RoadId;
use rtse_serve::{AnswerCache, CachedRound, RoundData};
use std::convert::Infallible;
use std::time::{Duration, Instant};

fn clock(slot_len: Duration, base: u16) -> (SlotClock, Instant) {
    let epoch = Instant::now();
    let prewarm =
        PrewarmConfig { slot_len, lead: slot_len / 10, base_slot: rtse_data::SlotOfDay(base) };
    (SlotClock::new(epoch, &prewarm), epoch)
}

#[test]
fn first_round_after_rollover_falls_back_to_full_propagation() {
    let slot_len = Duration::from_secs(300);
    let (clock, epoch) = clock(slot_len, 100);
    let cache = AnswerCache::new();

    // Two rounds of the pre-boundary slot. TTL zero forces the second
    // round to recompute, which must receive the first as its delta seed.
    let before = clock.slot_at(epoch + slot_len / 2);
    assert_eq!(before, rtse_data::SlotOfDay(100));
    let seeded = &mut false;
    cache
        .round_for(before, Duration::ZERO, |generation, stale: Option<&CachedRound>| {
            assert_eq!(generation, 1);
            assert!(stale.is_none(), "the slot's first round has nothing to seed from");
            Ok::<_, Infallible>(RoundData {
                values: vec![31.0, 47.0],
                observations: vec![(RoadId(1), 47.0)],
            })
        })
        .expect("infallible");
    cache
        .round_for(before, Duration::ZERO, |generation, stale| {
            assert_eq!(generation, 2);
            let stale = stale.expect("an expired same-slot round seeds the delta path");
            assert_eq!(stale.values, vec![31.0, 47.0]);
            assert_eq!(stale.observations, vec![(RoadId(1), 47.0)]);
            *seeded = true;
            Ok::<_, Infallible>(RoundData { values: vec![30.0, 46.0], observations: vec![] })
        })
        .expect("infallible");
    assert!(*seeded);

    // Roll the clock across the boundary: a new slot, a cold cell.
    let after = clock.slot_at(epoch + slot_len + slot_len / 2);
    assert_eq!(after, rtse_data::SlotOfDay(101));
    assert_ne!(before, after, "the clock must have rolled over");
    cache
        .round_for(after, Duration::ZERO, |generation, stale| {
            assert_eq!(generation, 1, "the rolled-over slot starts a fresh generation line");
            assert!(
                stale.is_none(),
                "the first round of a new slot must fall back to full propagation"
            );
            Ok::<_, Infallible>(RoundData { values: vec![40.0, 40.0], observations: vec![] })
        })
        .expect("infallible");

    // The old slot's seed survives the rollover untouched: coming back to
    // it (the same slot tomorrow) still warm-starts from its own history.
    cache
        .round_for(before, Duration::ZERO, |generation, stale| {
            assert_eq!(generation, 3);
            assert_eq!(stale.expect("same-slot seed persists").values, vec![30.0, 46.0]);
            Ok::<_, Infallible>(RoundData { values: vec![29.0, 45.0], observations: vec![] })
        })
        .expect("infallible");
}

#[test]
fn day_wrap_rollover_also_starts_cold() {
    // Slot 287 → 0 is still a rollover: the wrap must not alias cells.
    let slot_len = Duration::from_millis(50);
    let (clock, epoch) = clock(slot_len, 287);
    let cache = AnswerCache::new();
    let last = clock.slot_at(epoch);
    let wrapped = clock.slot_at(epoch + slot_len);
    assert_eq!(last, rtse_data::SlotOfDay(287));
    assert_eq!(wrapped, rtse_data::SlotOfDay(0));
    cache
        .round_for(last, Duration::ZERO, |_, _| {
            Ok::<_, Infallible>(RoundData { values: vec![9.0], observations: vec![] })
        })
        .expect("infallible");
    cache
        .round_for(wrapped, Duration::ZERO, |_, stale| {
            assert!(stale.is_none(), "slot 0 must not inherit slot 287's round");
            Ok::<_, Infallible>(RoundData { values: vec![8.0], observations: vec![] })
        })
        .expect("infallible");
}
