//! End-to-end tests over a real loopback socket: wire answers match
//! in-process answers, hostile budgets are typed rejects that never
//! reach the queue, protocol violations tear the connection down with a
//! typed `GoAway`, and drain answers every accepted request — no socket
//! is closed with a query still unanswered.

use crowd_rtse_core::{CrowdRtse, OfflineArtifacts, OnlineConfig};
use rtse_crowd::{uniform_costs, CostRange, WorkerPool};
use rtse_data::{SlotOfDay, SynthConfig, SynthDataset, TrafficGenerator};
use rtse_edge::frame::{
    decode_frame, encode_frame, DecodeLimits, Frame, GoAwayCode, QueryFrame, RejectCode,
};
use rtse_edge::{edge_serve, ClientReply, EdgeClient, EdgeConfig, PrewarmConfig};
use rtse_graph::generators::grid;
use rtse_graph::{Graph, RoadId};
use rtse_serve::{ServeConfig, ServeError, ServeRequest, ServeWorld};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Fixture {
    graph: Graph,
    dataset: SynthDataset,
    pool: WorkerPool,
    costs: Vec<u32>,
}

fn fixture(seed: u64) -> Fixture {
    let graph = grid(4, 5);
    let cfg = SynthConfig { days: 8, seed, ..SynthConfig::small_test() };
    let dataset = TrafficGenerator::new(&graph, cfg).generate();
    let pool = WorkerPool::spawn(&graph, 40, 0.5, (0.3, 1.0), seed.wrapping_add(7));
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
    Fixture { graph, dataset, pool, costs }
}

fn engine(f: &Fixture) -> CrowdRtse<'_> {
    let model = rtse_rtf::moment_estimate(&f.graph, &f.dataset.history);
    CrowdRtse::new(&f.graph, OfflineArtifacts::from_model(model))
}

fn world(f: &Fixture) -> ServeWorld<'_> {
    ServeWorld { workers: &f.pool, costs: &f.costs, truth: &f.dataset }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        batch_window: Duration::ZERO,
        workers: 1,
        online: OnlineConfig { budget: 15, ..Default::default() },
        ..Default::default()
    }
}

fn edge_config() -> EdgeConfig {
    EdgeConfig { shards: 1, ..Default::default() }
}

#[test]
fn wire_answers_match_in_process_answers() {
    let f = fixture(11);
    let e = engine(&f);
    let outcome = edge_serve(&e, &world(&f), &serve_config(), &edge_config(), |edge| {
        let slot = SlotOfDay(100);
        let roads = vec![0u32, 3, 7];
        let mut client = EdgeClient::connect(edge.addr()).expect("connect");
        let reply = client.query(roads.clone(), slot.0, None, None).expect("reply");
        let ClientReply::Answer(wire) = reply else { panic!("expected answer, got {reply:?}") };

        // The same query in-process shares the cached round, so the wire
        // answer must be bit-identical to it.
        let local = edge
            .serve()
            .query(ServeRequest::new(roads.iter().copied().map(RoadId).collect(), slot))
            .expect("in-process answer");
        assert_eq!(wire.slot, slot.0);
        assert_eq!(wire.generation, local.generation);
        assert!(local.cache_hit, "second ask of the slot must hit the cache");
        let wire_bits: Vec<u64> = wire.speeds.iter().map(|s| s.to_bits()).collect();
        let local_bits: Vec<u64> = local.estimates.iter().map(|s| s.to_bits()).collect();
        assert_eq!(wire_bits, local_bits, "wire answers must be bit-identical");
        assert_eq!(wire.roads, roads);
    })
    .expect("edge_serve");
    assert_eq!(outcome.edge_metrics.accepted, 1);
    assert_eq!(outcome.edge_metrics.queries, 1);
    assert_eq!(outcome.edge_metrics.answers, 1);
    assert_eq!(outcome.edge_metrics.rejects, 0);
}

#[test]
fn hostile_budgets_are_typed_rejects_and_never_reach_the_queue() {
    let f = fixture(12);
    let e = engine(&f);
    let serve_cfg = serve_config();
    let outcome = edge_serve(&e, &world(&f), &serve_cfg, &edge_config(), |edge| {
        let mut client = EdgeClient::connect(edge.addr()).expect("connect");

        // A deadline budget of ~28 hours: typed reject, not a request
        // parked in the queue for a day.
        let reply = client.query(vec![0], 10, Some(100_000_000), None).expect("reply");
        let ClientReply::Reject(r) = reply else { panic!("expected reject, got {reply:?}") };
        assert_eq!(r.code, RejectCode::DeadlineOutOfBounds);

        // A staleness budget past the TTL would let a stale cached round
        // answer (batch freshness is the min over members): typed reject.
        let reply = client.query(vec![0], 10, None, Some(100_000_000)).expect("reply");
        let ClientReply::Reject(r) = reply else { panic!("expected reject, got {reply:?}") };
        assert_eq!(r.code, RejectCode::StalenessOutOfBounds);

        // Nothing was admitted: the serving layer saw zero submissions.
        assert_eq!(edge.serve().metrics().submitted, 0);

        // The serving layer enforces the same bounds for in-process
        // callers (defense in depth behind the edge's wire check).
        let in_process = edge.serve().submit(
            ServeRequest::new(vec![RoadId(0)], SlotOfDay(10))
                .with_max_staleness(serve_cfg.staleness_bound() + Duration::from_secs(1)),
        );
        assert!(
            matches!(in_process, Err(ServeError::StalenessOutOfBounds { .. })),
            "got {in_process:?}"
        );
        let in_process = edge.serve().submit(
            ServeRequest::new(vec![RoadId(0)], SlotOfDay(10))
                .with_deadline(serve_cfg.deadline_bound() + Duration::from_secs(1)),
        );
        assert!(
            matches!(in_process, Err(ServeError::DeadlineOutOfBounds { .. })),
            "got {in_process:?}"
        );
    })
    .expect("edge_serve");
    assert_eq!(outcome.edge_metrics.bounds_rejects, 2);
    assert_eq!(outcome.edge_metrics.rejects, 2);
    assert_eq!(outcome.edge_metrics.answers, 0);
    assert_eq!(outcome.serve_metrics.submitted, 0);
}

#[test]
fn out_of_range_roads_and_slots_reject_over_the_wire() {
    let f = fixture(13);
    let e = engine(&f);
    edge_serve(&e, &world(&f), &serve_config(), &edge_config(), |edge| {
        let mut client = EdgeClient::connect(edge.addr()).expect("connect");
        let reply = client.query(vec![1_000_000], 10, None, None).expect("reply");
        let ClientReply::Reject(r) = reply else { panic!("expected reject, got {reply:?}") };
        assert_eq!(r.code, RejectCode::RoadOutOfRange);

        let reply = client.query(vec![0], 2000, None, None).expect("reply");
        let ClientReply::Reject(r) = reply else { panic!("expected reject, got {reply:?}") };
        assert_eq!(r.code, RejectCode::SlotOutOfRange);
    })
    .expect("edge_serve");
}

/// Reads frames from a raw socket until EOF; returns them all.
fn read_all_frames(stream: &mut TcpStream) -> Vec<Frame> {
    let limits = DecodeLimits::for_max_roads(4096);
    let mut buf = Vec::new();
    let mut frames = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some((frame, n)) = decode_frame(&buf, limits).expect("server bytes are protocol")
        {
            buf.drain(..n);
            frames.push(frame);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
    assert!(buf.is_empty(), "trailing partial frame after EOF");
    frames
}

#[test]
fn drain_answers_every_accepted_request_then_says_goaway() {
    let f = fixture(14);
    let e = engine(&f);
    const IN_FLIGHT: u64 = 8;
    let frames = edge_serve(&e, &world(&f), &serve_config(), &edge_config(), |edge| {
        let mut stream = TcpStream::connect(edge.addr()).expect("connect");

        // Hold the serving workers so all eight queries are still queued
        // (accepted, unanswered) when shutdown begins.
        edge.serve().pause();
        let mut wire = Vec::new();
        for id in 1..=IN_FLIGHT {
            encode_frame(
                &Frame::Query(QueryFrame {
                    request_id: id,
                    deadline_ms: None,
                    max_staleness_ms: None,
                    slot: 42,
                    roads: vec![0, 1],
                }),
                &mut wire,
            );
        }
        stream.write_all(&wire).expect("send queries");

        // Wait until the edge has admitted all of them into the queue.
        let deadline = Instant::now() + Duration::from_secs(10);
        while edge.serve().queue_len() < IN_FLIGHT as usize {
            assert!(Instant::now() < deadline, "queries never reached the queue");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Release the workers and return immediately: shutdown races the
        // eight in-flight requests. Drain must resolve every one onto
        // the wire before the socket closes.
        edge.serve().resume();
        stream
    })
    .map(|outcome| {
        let mut stream = outcome.value;
        let frames = read_all_frames(&mut stream);
        assert_eq!(outcome.edge_metrics.queries, IN_FLIGHT);
        assert_eq!(
            outcome.edge_metrics.answers + outcome.edge_metrics.rejects,
            IN_FLIGHT,
            "every accepted request must resolve on the wire"
        );
        frames
    })
    .expect("edge_serve");

    // All eight replies (answers, by construction nothing could deadline)
    // followed by exactly one typed GoAway(ShuttingDown).
    let mut seen_ids: Vec<u64> = frames
        .iter()
        .filter_map(|f| match f {
            Frame::Answer(a) => Some(a.request_id),
            Frame::Reject(r) => Some(r.request_id),
            _ => None,
        })
        .collect();
    seen_ids.sort_unstable();
    assert_eq!(seen_ids, (1..=IN_FLIGHT).collect::<Vec<_>>());
    let goaways: Vec<_> = frames
        .iter()
        .filter_map(|f| match f {
            Frame::GoAway(g) => Some(g.code),
            _ => None,
        })
        .collect();
    assert_eq!(goaways, vec![GoAwayCode::ShuttingDown]);
    match frames.last() {
        Some(Frame::GoAway(_)) => {}
        other => panic!("GoAway must be the final frame, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_get_a_typed_goaway_and_a_close() {
    let f = fixture(15);
    let e = engine(&f);
    edge_serve(&e, &world(&f), &serve_config(), &edge_config(), |edge| {
        let mut stream = TcpStream::connect(edge.addr()).expect("connect");
        stream.write_all(b"GET / HTTP/1.1\r\nHost: not-rtse\r\n\r\n").expect("send");
        let frames = read_all_frames(&mut stream);
        assert_eq!(frames.len(), 1, "one GoAway then close, got {frames:?}");
        match &frames[0] {
            Frame::GoAway(g) => assert_eq!(g.code, GoAwayCode::ProtocolError),
            other => panic!("expected GoAway, got {other:?}"),
        }
    })
    .expect("edge_serve");
}

#[test]
fn oversized_length_prefix_is_rejected_from_the_header_alone() {
    let f = fixture(16);
    let e = engine(&f);
    edge_serve(&e, &world(&f), &serve_config(), &edge_config(), |edge| {
        let mut stream = TcpStream::connect(edge.addr()).expect("connect");
        // A valid-looking header claiming a 1 GiB payload — and not one
        // byte of payload behind it. The server must reject now, from
        // the header, rather than buffer toward 1 GiB.
        let mut header = Vec::new();
        encode_frame(
            &Frame::Query(QueryFrame {
                request_id: 1,
                deadline_ms: None,
                max_staleness_ms: None,
                slot: 0,
                roads: vec![0],
            }),
            &mut header,
        );
        header.truncate(rtse_edge::HEADER_LEN);
        header[16..20].copy_from_slice(&(1u32 << 30).to_be_bytes());
        stream.write_all(&header).expect("send");
        let frames = read_all_frames(&mut stream);
        match frames.first() {
            Some(Frame::GoAway(g)) => assert_eq!(g.code, GoAwayCode::ProtocolError),
            other => panic!("expected GoAway, got {other:?}"),
        }
    })
    .expect("edge_serve");
}

#[test]
fn idle_connections_are_closed_with_a_typed_goaway() {
    let f = fixture(17);
    let e = engine(&f);
    let edge_cfg =
        EdgeConfig { shards: 1, idle_timeout: Duration::from_millis(50), ..Default::default() };
    let outcome = edge_serve(&e, &world(&f), &serve_config(), &edge_cfg, |edge| {
        let mut stream = TcpStream::connect(edge.addr()).expect("connect");
        // Say nothing; the server must hang up with IdleTimeout.
        let frames = read_all_frames(&mut stream);
        assert_eq!(frames.len(), 1, "got {frames:?}");
        match &frames[0] {
            Frame::GoAway(g) => assert_eq!(g.code, GoAwayCode::IdleTimeout),
            other => panic!("expected GoAway, got {other:?}"),
        }
    })
    .expect("edge_serve");
    assert_eq!(outcome.edge_metrics.idle_closed, 1);
}

#[test]
fn sharded_accept_serves_concurrent_clients() {
    let f = fixture(18);
    let e = engine(&f);
    let edge_cfg = EdgeConfig { shards: 3, ..Default::default() };
    let outcome = edge_serve(&e, &world(&f), &serve_config(), &edge_cfg, |edge| {
        let mut clients: Vec<EdgeClient> =
            (0..9).map(|_| EdgeClient::connect(edge.addr()).expect("connect")).collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let reply =
                client.query(vec![i as u32 % 4], 10 + (i as u16 % 3), None, None).expect("reply");
            assert!(matches!(reply, ClientReply::Answer(_)), "got {reply:?}");
        }
    })
    .expect("edge_serve");
    assert_eq!(outcome.edge_metrics.accepted, 9);
    assert_eq!(outcome.edge_metrics.answers, 9);
}

#[test]
fn rollover_prewarm_fills_the_next_slot_before_the_boundary() {
    let f = fixture(19);
    let e = engine(&f);
    let edge_cfg = EdgeConfig {
        shards: 1,
        prewarm: Some(PrewarmConfig {
            slot_len: Duration::from_millis(400),
            lead: Duration::from_millis(200),
            base_slot: SlotOfDay(50),
        }),
        ..Default::default()
    };
    edge_serve(&e, &world(&f), &serve_config(), &edge_cfg, |edge| {
        let clock = edge.clock().expect("prewarm configured");
        // Wait into the lead window of the first boundary, then verify
        // the *next* slot's cache generation went live before any client
        // ever asked for it.
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let now = Instant::now();
            let next = clock.next_slot(now);
            if edge.serve().cache_generation(next) >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "prewarm never warmed the next slot");
            std::thread::sleep(Duration::from_millis(5));
        }
    })
    .expect("edge_serve");
}

#[test]
fn duplicate_request_ids_pipelined_on_one_conn_each_get_their_answer() {
    // The protocol does not forbid a client from reusing a request id
    // across pipelined frames on one connection. The edge must treat each
    // frame as its own request: neither query may be dropped or answered
    // with the other's road list.
    let f = fixture(23);
    let e = engine(&f);
    const DUP_ID: u64 = 7;
    let sent: [Vec<u32>; 3] = [vec![0, 1], vec![2, 3], vec![1, 2, 3]];
    let frames = edge_serve(&e, &world(&f), &serve_config(), &edge_config(), |edge| {
        let mut stream = TcpStream::connect(edge.addr()).expect("connect");

        // Hold the workers so all three frames are admitted before any
        // is answered — the duplicate ids genuinely coexist in flight.
        edge.serve().pause();
        let mut wire = Vec::new();
        for roads in &sent {
            encode_frame(
                &Frame::Query(QueryFrame {
                    request_id: DUP_ID,
                    deadline_ms: None,
                    max_staleness_ms: None,
                    slot: 42,
                    roads: roads.clone(),
                }),
                &mut wire,
            );
        }
        stream.write_all(&wire).expect("send queries");
        let deadline = Instant::now() + Duration::from_secs(10);
        while edge.serve().queue_len() < sent.len() {
            assert!(Instant::now() < deadline, "queries never reached the queue");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Drain-at-shutdown resolves every accepted request on the wire.
        edge.serve().resume();
        stream
    })
    .map(|outcome| {
        let mut stream = outcome.value;
        let frames = read_all_frames(&mut stream);
        assert_eq!(outcome.edge_metrics.queries, sent.len() as u64);
        assert_eq!(
            outcome.edge_metrics.answers,
            sent.len() as u64,
            "every duplicate-id request must be answered"
        );
        frames
    })
    .expect("edge_serve");

    let mut answered: Vec<Vec<u32>> = frames
        .iter()
        .filter_map(|frame| match frame {
            Frame::Answer(a) => {
                assert_eq!(a.request_id, DUP_ID, "answers must echo the reused id");
                assert_eq!(a.roads.len(), a.speeds.len());
                Some(a.roads.clone())
            }
            Frame::Reject(r) => panic!("unexpected reject: {:?}", r.code),
            _ => None,
        })
        .collect();

    // Multiset equality: each pipelined query got an answer for its own
    // road list — duplicate ids did not mis-route or coalesce replies.
    let mut expected = sent.to_vec();
    answered.sort();
    expected.sort();
    assert_eq!(answered, expected);
    assert!(
        matches!(frames.last(), Some(Frame::GoAway(g)) if g.code == GoAwayCode::ShuttingDown),
        "connection must end with a shutdown goaway"
    );
}
