//! Property and adversarial tests for the wire codec.
//!
//! The decoder's contract: `decode ∘ encode = id` for every well-formed
//! frame; every malformed byte sequence is a typed [`FrameError`]; a
//! partial read at *any* byte boundary is `Ok(None)` (wait for more),
//! never a wrong answer; and an adversarial length prefix is rejected
//! from the header alone, before any payload allocation.

use proptest::prelude::*;
use rtse_edge::frame::{
    decode_frame, encode_frame, AnswerFrame, DecodeLimits, Frame, FrameError, GoAwayCode,
    GoAwayFrame, QueryFrame, RejectCode, RejectFrame, HEADER_LEN,
};

fn limits() -> DecodeLimits {
    DecodeLimits::for_max_roads(256)
}

fn assert_roundtrip(frame: &Frame) {
    let mut wire = Vec::new();
    encode_frame(frame, &mut wire);
    let (decoded, consumed) =
        decode_frame(&wire, limits()).expect("well-formed").expect("complete");
    assert_eq!(consumed, wire.len(), "must consume the exact frame");
    assert_eq!(&decoded, frame);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode∘decode = id for queries across the id/budget/slot/road
    /// space, including the unset-budget sentinel boundary.
    #[test]
    fn query_frames_roundtrip(
        request_id in 0u64..u64::MAX,
        deadline_ms in 0u32..u32::MAX,
        slot in 0u16..65535,
        roads in proptest::collection::vec(0u32..u32::MAX, 1..256),
    ) {
        let frame = Frame::Query(QueryFrame {
            request_id,
            // Exercise both set and unset budgets from one u32 stream
            // (u32::MAX is the wire sentinel for "unset").
            deadline_ms: if deadline_ms % 3 == 0 { None } else { Some(deadline_ms % 600_000) },
            max_staleness_ms: if deadline_ms % 2 == 0 { None } else { Some(deadline_ms % 300_000) },
            slot,
            roads,
        });
        assert_roundtrip(&frame);
    }

    /// encode∘decode = id for answers, with speeds compared as raw IEEE
    /// bits so the property covers the full f64 space (including NaNs).
    #[test]
    fn answer_frames_roundtrip_bitwise(
        request_id in 0u64..u64::MAX,
        generation in 1u64..u64::MAX,
        slot in 0u16..288,
        bits in proptest::collection::vec(0u64..u64::MAX, 1..64),
    ) {
        let roads: Vec<u32> = (0..bits.len() as u32).collect();
        let speeds: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let frame = Frame::Answer(AnswerFrame {
            request_id,
            generation,
            age_us: generation.rotate_left(17),
            wait_us: generation.rotate_right(9),
            slot,
            cache_hit: generation % 2 == 0,
            roads,
            speeds,
        });
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let (decoded, consumed) =
            decode_frame(&wire, limits()).expect("well-formed").expect("complete");
        prop_assert_eq!(consumed, wire.len());
        let Frame::Answer(a) = decoded else { panic!("answer expected") };
        let got_bits: Vec<u64> = a.speeds.iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(got_bits, bits);
    }

    /// Every prefix of a valid frame decodes to `Ok(None)` — a TCP read
    /// split at any byte boundary only ever asks for more bytes.
    #[test]
    fn partial_reads_split_at_every_byte_boundary(
        request_id in 0u64..u64::MAX,
        slot in 0u16..288,
        roads in proptest::collection::vec(0u32..100_000, 1..32),
    ) {
        let frame = Frame::Query(QueryFrame {
            request_id,
            deadline_ms: Some(250),
            max_staleness_ms: None,
            slot,
            roads,
        });
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        for cut in 0..wire.len() {
            let out = decode_frame(&wire[..cut], limits())
                .unwrap_or_else(|e| panic!("prefix of {cut} bytes must not error: {e}"));
            prop_assert!(out.is_none(), "prefix of {} bytes must not decode", cut);
        }
        // And reassembly across the split yields the original frame.
        prop_assert!(decode_frame(&wire, limits()).expect("valid").is_some());
    }

    /// Garbage never decodes: random bytes either fail typed (almost
    /// always, on the magic) or wait for more — never panic, never yield
    /// a frame, unless the bytes happen to *be* protocol.
    #[test]
    fn random_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // The result is irrelevant; the property is "returns, without
        // panicking or allocating past the cap".
        let _ = decode_frame(&bytes, limits());
    }
}

#[test]
fn truncated_frame_waits_then_resolves() {
    let frame = Frame::Reject(RejectFrame {
        request_id: 42,
        code: RejectCode::QueueFull,
        detail: "queue full".into(),
    });
    let mut wire = Vec::new();
    encode_frame(&frame, &mut wire);
    let (head, tail) = wire.split_at(HEADER_LEN + 2);
    assert!(decode_frame(head, limits()).expect("prefix").is_none());
    let mut reassembled = head.to_vec();
    reassembled.extend_from_slice(tail);
    let (decoded, _) = decode_frame(&reassembled, limits()).expect("valid").expect("complete");
    assert_eq!(decoded, frame);
}

#[test]
fn oversized_length_prefix_rejects_before_allocating() {
    // A header claiming a 3 GiB payload, with zero payload bytes behind
    // it: the decoder must reject from the 20 header bytes alone rather
    // than wait for (or reserve room for) the claimed payload.
    let mut wire = Vec::new();
    encode_frame(
        &Frame::GoAway(GoAwayFrame { code: GoAwayCode::ShuttingDown, detail: String::new() }),
        &mut wire,
    );
    wire.truncate(HEADER_LEN);
    wire[16..20].copy_from_slice(&(3u32 << 30).to_be_bytes());
    let err = decode_frame(&wire, limits()).expect_err("must reject");
    assert!(matches!(err, FrameError::Oversize { len, .. } if len == 3 << 30), "got {err:?}");
}

#[test]
fn garbage_magic_is_a_typed_error() {
    for garbage in
        [&b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"[..], &[0xff; 64][..], &b"SSH-2.0-OpenSSH_9.6"[..]]
    {
        let err = decode_frame(garbage, limits()).expect_err("not protocol");
        assert!(matches!(err, FrameError::BadMagic { .. }), "got {err:?}");
    }
}

#[test]
fn wrong_version_and_type_are_typed_errors() {
    let mut wire = Vec::new();
    encode_frame(
        &Frame::Query(QueryFrame {
            request_id: 1,
            deadline_ms: None,
            max_staleness_ms: None,
            slot: 0,
            roads: vec![1],
        }),
        &mut wire,
    );
    let mut v = wire.clone();
    v[4] = 9;
    assert!(matches!(
        decode_frame(&v, limits()).expect_err("bad version"),
        FrameError::BadVersion { got: 9 }
    ));
    let mut t = wire.clone();
    t[5] = 200;
    assert!(matches!(
        decode_frame(&t, limits()).expect_err("bad type"),
        FrameError::BadType { got: 200 }
    ));
    let mut r = wire;
    r[6] = 1;
    assert!(matches!(
        decode_frame(&r, limits()).expect_err("reserved"),
        FrameError::ReservedNotZero { .. }
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forged road counts: overwrite the count field of a valid query
    /// with every possible u16 — the decoder yields the original frame
    /// when the count happens to be right, and a typed error otherwise.
    /// Never a panic, never a mis-sized allocation.
    #[test]
    fn forged_road_counts_are_typed_errors(
        forged in 0u16..=u16::MAX,
        real in 1usize..8,
    ) {
        let frame = Frame::Query(QueryFrame {
            request_id: 99,
            deadline_ms: None,
            max_staleness_ms: None,
            slot: 3,
            roads: (0..real as u32).collect(),
        });
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let off = HEADER_LEN + 10;
        wire[off..off + 2].copy_from_slice(&forged.to_be_bytes());
        match decode_frame(&wire, limits()) {
            Ok(Some((decoded, _))) => {
                prop_assert_eq!(usize::from(forged), real, "wrong count must not decode");
                prop_assert_eq!(decoded, frame);
            }
            Ok(None) => prop_assert!(false, "a complete buffer must not stall"),
            Err(FrameError::TooManyRoads { count, .. }) => {
                prop_assert_eq!(count, u32::from(forged));
            }
            Err(FrameError::LengthMismatch { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }

    /// Forged length prefixes: overwrite the payload-length field of a
    /// valid frame with every u32 shape — oversize caps fire from the
    /// header, short claims are typed mismatches, long claims wait for
    /// bytes that never come. The decoder never panics and never trusts
    /// the forged length for an allocation.
    #[test]
    fn forged_length_prefixes_never_panic(
        forged in 0u32..=u32::MAX,
        roads in proptest::collection::vec(0u32..1000, 1..8),
    ) {
        let frame = Frame::Query(QueryFrame {
            request_id: 5,
            deadline_ms: Some(100),
            max_staleness_ms: None,
            slot: 1,
            roads,
        });
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let real_len = (wire.len() - HEADER_LEN) as u32;
        wire[16..20].copy_from_slice(&forged.to_be_bytes());
        match decode_frame(&wire, limits()) {
            Ok(Some((decoded, consumed))) => {
                prop_assert_eq!(forged, real_len, "wrong length must not decode");
                prop_assert_eq!(consumed, HEADER_LEN + real_len as usize);
                prop_assert_eq!(decoded, frame);
            }
            // A longer-than-real claim inside the cap legitimately waits.
            Ok(None) => prop_assert!(forged > real_len),
            Err(FrameError::Oversize { len, .. }) => prop_assert_eq!(len, forged),
            Err(FrameError::LengthMismatch { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }
}

#[test]
fn budget_sentinel_boundaries_roundtrip() {
    // u32::MAX is the wire sentinel for "unset": a frame constructed with
    // Some(u32::MAX) is indistinguishable from None on the wire and must
    // decode as None (deferring to server config), while MAX-1 survives.
    let mut wire = Vec::new();
    encode_frame(
        &Frame::Query(QueryFrame {
            request_id: 1,
            deadline_ms: Some(u32::MAX),
            max_staleness_ms: Some(u32::MAX - 1),
            slot: 0,
            roads: vec![4],
        }),
        &mut wire,
    );
    let (decoded, _) = decode_frame(&wire, limits()).expect("valid").expect("complete");
    let Frame::Query(q) = decoded else { panic!("query expected") };
    assert_eq!(q.deadline_ms, None, "MAX must decode as the unset sentinel");
    assert_eq!(q.max_staleness_ms, Some(u32::MAX - 1));
}

#[test]
fn forged_answer_count_of_u32_max_is_a_typed_error() {
    // An answer whose count field claims u32::MAX pairs behind a 32-byte
    // payload: the expected-length product must saturate (not wrap back
    // into range) and reject, with no element allocation.
    let mut wire = Vec::new();
    encode_frame(
        &Frame::Answer(AnswerFrame {
            request_id: 2,
            generation: 1,
            age_us: 0,
            wait_us: 0,
            slot: 0,
            cache_hit: false,
            roads: vec![],
            speeds: vec![],
        }),
        &mut wire,
    );
    wire[HEADER_LEN + 28..HEADER_LEN + 32].copy_from_slice(&u32::MAX.to_be_bytes());
    let err = decode_frame(&wire, limits()).expect_err("must reject");
    assert!(matches!(err, FrameError::LengthMismatch { .. }), "got {err:?}");
}

#[test]
fn oversized_detail_strings_clamp_on_a_char_boundary() {
    // A detail string past the u16 length field's range, arranged so the
    // 65535-byte cut lands mid-é: the encoder must back off to a char
    // boundary and emit valid UTF-8 rather than wrap the length field.
    let mut detail = "x".repeat(65_534);
    detail.push_str("ééé");
    let mut wire = Vec::new();
    encode_frame(
        &Frame::Reject(RejectFrame { request_id: 3, code: RejectCode::Internal, detail }),
        &mut wire,
    );
    let big = DecodeLimits { max_payload: 1 << 20, max_roads: 64 };
    let (decoded, consumed) = decode_frame(&wire, big).expect("valid").expect("complete");
    assert_eq!(consumed, wire.len());
    let Frame::Reject(r) = decoded else { panic!("reject expected") };
    assert_eq!(r.detail.len(), 65_534, "cut must back off past the split é");
    assert!(r.detail.ends_with('x'));
}

#[test]
fn oversized_road_lists_clamp_to_the_count_field_range() {
    // 70 000 roads cannot be described by the u16 count field: the
    // encoder truncates to the first 65 535 instead of wrapping the count
    // to 4 464 and desynchronizing the framing.
    let roads: Vec<u32> = (0..70_000).collect();
    let mut wire = Vec::new();
    encode_frame(
        &Frame::Query(QueryFrame {
            request_id: 4,
            deadline_ms: None,
            max_staleness_ms: None,
            slot: 0,
            roads: roads.clone(),
        }),
        &mut wire,
    );
    let big = DecodeLimits::for_max_roads(u32::from(u16::MAX));
    let (decoded, consumed) = decode_frame(&wire, big).expect("valid").expect("complete");
    assert_eq!(consumed, wire.len());
    let Frame::Query(q) = decoded else { panic!("query expected") };
    assert_eq!(q.roads.len(), usize::from(u16::MAX));
    assert_eq!(q.roads, roads[..usize::from(u16::MAX)]);
}
