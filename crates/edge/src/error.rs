//! Typed errors of the edge front-end.

use rtse_check::InvariantViolation;
use rtse_serve::ServeError;
use std::fmt;

/// Why an edge deployment failed to start or run.
#[derive(Debug)]
pub enum EdgeError {
    /// The [`crate::EdgeConfig`] violates an invariant.
    InvalidConfig(InvariantViolation),
    /// Binding or preparing the listen socket failed.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The OS error, rendered.
        detail: String,
    },
    /// Cloning the listener for a shard thread failed.
    Shard {
        /// Which shard could not be started.
        shard: usize,
        /// The OS error, rendered.
        detail: String,
    },
    /// The serving layer behind the edge rejected the deployment.
    Serve(ServeError),
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeError::InvalidConfig(v) => write!(f, "invalid edge config: {v}"),
            EdgeError::Bind { addr, detail } => write!(f, "cannot listen on {addr}: {detail}"),
            EdgeError::Shard { shard, detail } => {
                write!(f, "cannot start listener shard {shard}: {detail}")
            }
            EdgeError::Serve(e) => write!(f, "serving layer: {e}"),
        }
    }
}

impl std::error::Error for EdgeError {}

impl From<ServeError> for EdgeError {
    fn from(e: ServeError) -> Self {
        EdgeError::Serve(e)
    }
}

impl From<InvariantViolation> for EdgeError {
    fn from(v: InvariantViolation) -> Self {
        EdgeError::InvalidConfig(v)
    }
}
