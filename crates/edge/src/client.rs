//! A minimal blocking client for the edge protocol.
//!
//! One connection, one request in flight: `connect → query → reply`.
//! Tests, the README quickstart, and the load harness's warm-up path use
//! this; the load harness's steady state drives nonblocking sockets with
//! the frame codec directly to multiplex thousands of connections per
//! worker process.

use crate::frame::{
    decode_frame, encode_frame, AnswerFrame, DecodeLimits, Frame, FrameError, GoAwayFrame,
    QueryFrame, RejectFrame,
};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What the server said to one query.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientReply {
    /// The estimates.
    Answer(AnswerFrame),
    /// A typed per-request rejection.
    Reject(RejectFrame),
}

/// Why a client call failed without a per-request reply.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure, rendered.
    Io(String),
    /// The server's bytes were not protocol (should never happen against
    /// a real edge; decisive when it does).
    Frame(FrameError),
    /// The server closed the connection with a typed notice.
    GoAway(GoAwayFrame),
    /// The connection ended without a reply.
    Closed,
    /// The reply's request id does not match the query's.
    IdMismatch {
        /// Id the query carried.
        sent: u64,
        /// Id the reply carried.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::GoAway(g) => write!(f, "server closed the connection: {:?}", g.code),
            ClientError::Closed => write!(f, "connection ended without a reply"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "reply for request {got} but {sent} was asked")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// One blocking edge connection.
pub struct EdgeClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    limits: DecodeLimits,
    next_id: u64,
}

impl EdgeClient {
    /// Connects to an edge deployment.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            limits: DecodeLimits::for_max_roads(crate::config::MAX_ROADS_PER_QUERY),
            next_id: 1,
        })
    }

    /// Bounds how long [`Self::query`] blocks for the reply.
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout).map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Sends one query and blocks for its reply.
    pub fn query(
        &mut self,
        roads: Vec<u32>,
        slot: u16,
        deadline_ms: Option<u32>,
        max_staleness_ms: Option<u32>,
    ) -> Result<ClientReply, ClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let frame =
            Frame::Query(QueryFrame { request_id, deadline_ms, max_staleness_ms, slot, roads });
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        self.stream.write_all(&wire).map_err(|e| ClientError::Io(e.to_string()))?;
        match self.recv_frame()? {
            Frame::Answer(a) if a.request_id == request_id => Ok(ClientReply::Answer(a)),
            Frame::Reject(r) if r.request_id == request_id => Ok(ClientReply::Reject(r)),
            Frame::Answer(a) => {
                Err(ClientError::IdMismatch { sent: request_id, got: a.request_id })
            }
            Frame::Reject(r) => {
                Err(ClientError::IdMismatch { sent: request_id, got: r.request_id })
            }
            Frame::GoAway(g) => Err(ClientError::GoAway(g)),
            Frame::Query(_) => Err(ClientError::Frame(FrameError::BadType { got: 1 })),
        }
    }

    /// Blocks until one complete frame arrives.
    pub fn recv_frame(&mut self) -> Result<Frame, ClientError> {
        loop {
            match decode_frame(&self.rbuf, self.limits) {
                Ok(Some((frame, consumed))) => {
                    self.rbuf.drain(..consumed);
                    return Ok(frame);
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Frame(e)),
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.rbuf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }
}
