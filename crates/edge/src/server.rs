//! The edge deployment: sharded accept loops in front of `rtse-serve`.
//!
//! ## Shape
//!
//! [`edge_serve`] owns the whole lifecycle. It binds the listen socket,
//! starts `rtse_serve::serve` (the in-process serving loops), and inside
//! that server's scope spins up `shards` listener threads plus an
//! optional rollover-prewarm thread on one [`rtse_pool::ComputePool`]
//! scope. Each shard owns its accepted connections outright — accept,
//! decode, admit, fan-in, flush all happen on the shard thread, so the
//! only cross-thread contention is the serving queue itself (which is
//! the point: the queue is the backpressure boundary).
//!
//! ## Admission path
//!
//! wire frame → [`crate::frame::decode_frame`] (fail-closed) →
//! **bounds check** (a hostile deadline/staleness budget is a typed
//! [`crate::frame::RejectCode`] before the request ever touches the
//! queue) → [`rtse_serve::ServerHandle::submit`] → ticket tracked by
//! request id → answer/reject frame on resolution.
//!
//! ## Drain
//!
//! When the caller's closure returns, shards stop accepting, resolve
//! every in-flight ticket (the serving layer is still live underneath —
//! its own drain starts only after the edge scope joins), flush each
//! connection's write buffer, send a typed `GoAway(ShuttingDown)`, and
//! close. No accepted request is dropped answerless; the e2e test
//! `edge_drain_answers_everything` pins this.

use crate::config::EdgeConfig;
use crate::conn::{CloseReason, Conn};
use crate::error::EdgeError;
use crate::frame::{DecodeLimits, GoAwayCode, QueryFrame, RejectCode};
use crate::rollover::{prewarm_loop, SlotClock};
use crowd_rtse_core::CrowdRtse;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_obs::Stage;
use rtse_pool::ComputePool;
use rtse_serve::{MetricsSnapshot, ServeConfig, ServeRequest, ServeWorld, ServerHandle};
use rtse_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// How long a shard sleeps when a full pump pass made no progress
/// (nothing accepted, read, resolved, or written).
const IDLE_BACKOFF: Duration = Duration::from_micros(500);

/// Per-connection budget for the final blocking flush during drain.
const DRAIN_FLUSH_BUDGET: Duration = Duration::from_secs(5);

/// Edge-side counters. All increments are statistics (no ordering
/// protocol hangs off them), so they use relaxed atomics like
/// `rtse_serve::ServeMetrics`.
#[derive(Debug, Default)]
pub struct EdgeMetrics {
    accepted: AtomicU64,
    closed: AtomicU64,
    queries: AtomicU64,
    answers: AtomicU64,
    rejects: AtomicU64,
    bounds_rejects: AtomicU64,
    protocol_errors: AtomicU64,
    idle_closed: AtomicU64,
}

/// One coherent-enough (quiescently exact) view of [`EdgeMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeMetricsSnapshot {
    /// Connections accepted across all shards.
    pub accepted: u64,
    /// Connections closed (any reason).
    pub closed: u64,
    /// Query frames decoded and dispatched.
    pub queries: u64,
    /// Answer frames sent.
    pub answers: u64,
    /// Reject frames sent (all causes, including bounds).
    pub rejects: u64,
    /// Rejects from the edge's pre-admission bounds check alone.
    pub bounds_rejects: u64,
    /// Connections torn down for protocol violations.
    pub protocol_errors: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
}

impl EdgeMetrics {
    fn snapshot(&self) -> EdgeMetricsSnapshot {
        EdgeMetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed), // lint: relaxed-counter
            closed: self.closed.load(Ordering::Relaxed),     // lint: relaxed-counter
            queries: self.queries.load(Ordering::Relaxed),   // lint: relaxed-counter
            answers: self.answers.load(Ordering::Relaxed),   // lint: relaxed-counter
            rejects: self.rejects.load(Ordering::Relaxed),   // lint: relaxed-counter
            bounds_rejects: self.bounds_rejects.load(Ordering::Relaxed), // lint: relaxed-counter
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed), // lint: relaxed-counter
            idle_closed: self.idle_closed.load(Ordering::Relaxed), // lint: relaxed-counter
        }
    }
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
}

fn bump_n(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed); // lint: relaxed-counter
}

/// What [`edge_serve`] returns: the caller closure's value plus final
/// (quiescent, exact) counters from both layers.
#[derive(Debug)]
pub struct EdgeOutcome<R> {
    /// The closure's return value.
    pub value: R,
    /// Edge counters after every shard drained.
    pub edge_metrics: EdgeMetricsSnapshot,
    /// Serving-layer counters after its queue drained.
    pub serve_metrics: MetricsSnapshot,
}

/// Client-facing view of a running edge deployment.
pub struct EdgeHandle<'h, 'a> {
    addr: SocketAddr,
    serve: &'h ServerHandle<'a>,
    metrics: &'h EdgeMetrics,
    clock: Option<SlotClock>,
}

impl EdgeHandle<'_, '_> {
    /// The bound listen address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving layer underneath — in-process submissions, pressure,
    /// pause/resume staging, metrics.
    pub fn serve(&self) -> &ServerHandle<'_> {
        self.serve
    }

    /// Live edge counters (quiescently consistent; exact after drain).
    pub fn metrics(&self) -> EdgeMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The rollover clock, when prewarm is configured: what slot the
    /// edge considers current. Load generators use this to aim queries
    /// at the live slot.
    pub fn clock(&self) -> Option<SlotClock> {
        self.clock
    }
}

/// Everything a shard loop needs, shared by reference across the scope.
struct ShardCtx<'h, 'a> {
    handle: &'h ServerHandle<'a>,
    config: &'h EdgeConfig,
    limits: DecodeLimits,
    deadline_bound: Duration,
    staleness_bound: Duration,
    shutdown: &'h AtomicBool,
    metrics: &'h EdgeMetrics,
}

/// Runs an edge deployment for the duration of `run`.
///
/// Checks the edge config's invariants, binds the listener, starts the
/// serving layer, spins up the shard (and prewarm) threads, and calls
/// `run` with the [`EdgeHandle`]. On return the shards drain — every
/// in-flight request resolves to an answer or typed reject on the wire,
/// every connection gets a `GoAway` — then the serving layer drains.
pub fn edge_serve<R>(
    engine: &CrowdRtse<'_>,
    world: &ServeWorld<'_>,
    serve_config: &ServeConfig,
    edge_config: &EdgeConfig,
    run: impl FnOnce(&EdgeHandle<'_, '_>) -> R,
) -> Result<EdgeOutcome<R>, EdgeError> {
    rtse_check::Validate::validate(edge_config)?;
    let listener = TcpListener::bind(&edge_config.addr)
        .map_err(|e| EdgeError::Bind { addr: edge_config.addr.clone(), detail: e.to_string() })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| EdgeError::Bind { addr: edge_config.addr.clone(), detail: e.to_string() })?;
    let addr = listener
        .local_addr()
        .map_err(|e| EdgeError::Bind { addr: edge_config.addr.clone(), detail: e.to_string() })?;

    let shards = edge_config.resolved_shards();
    let mut listeners = Vec::with_capacity(shards);
    for shard in 1..shards {
        let clone =
            listener.try_clone().map_err(|e| EdgeError::Shard { shard, detail: e.to_string() })?;
        listeners.push(clone);
    }
    listeners.push(listener);

    let metrics = EdgeMetrics::default();
    let shutdown = AtomicBool::new(false);
    let clock = edge_config.prewarm.as_ref().map(|p| SlotClock::new(Instant::now(), p));

    let outcome = rtse_serve::serve(engine, world, serve_config, |handle| {
        let ctx = ShardCtx {
            handle,
            config: edge_config,
            limits: DecodeLimits::for_max_roads(edge_config.max_roads_per_query),
            deadline_bound: serve_config.deadline_bound(),
            staleness_bound: serve_config.staleness_bound(),
            shutdown: &shutdown,
            metrics: &metrics,
        };
        // One thread per shard, one for prewarm, plus one spare: at
        // width 1 `ComputePool::scoped` runs jobs inline on submission,
        // which would run a shard loop on this thread and never reach
        // `run`.
        let prewarm_threads = usize::from(clock.is_some());
        let pool = ComputePool::new(shards + prewarm_threads + 1);
        pool.scoped(|scope| {
            for listener in listeners {
                let ctx = &ctx;
                scope.submit(Box::new(move || shard_loop(listener, ctx)));
            }
            if let (Some(clock), Some(prewarm)) = (&clock, &edge_config.prewarm) {
                let lead = prewarm.lead;
                let shutdown = &shutdown;
                scope.submit(Box::new(move || {
                    prewarm_loop(engine, handle, clock, lead, shutdown);
                }));
            }
            let edge_handle = EdgeHandle { addr, serve: handle, metrics: &metrics, clock };
            // Signal shutdown even if `run` unwinds, so the shard loops
            // always exit and the scope always joins.
            let _guard = ShutdownGuard { shutdown: &shutdown };
            run(&edge_handle)
        })
    })?;

    Ok(EdgeOutcome {
        value: outcome.value,
        edge_metrics: metrics.snapshot(),
        serve_metrics: outcome.metrics,
    })
}

struct ShutdownGuard<'s> {
    shutdown: &'s AtomicBool,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// One listener shard: accept, pump, drain.
fn shard_loop(listener: TcpListener, ctx: &ShardCtx<'_, '_>) {
    let obs = &ctx.config.obs;
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let draining = ctx.shutdown.load(Ordering::Acquire);
        let mut progressed = false;

        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Err: the peer vanished between accept and setup.
                        if let Ok(conn) = Conn::new(stream, Instant::now(), obs.clone()) {
                            obs.incr(Stage::EdgeAccept);
                            obs.gauge_add(Stage::EdgeConnActive, 1);
                            bump(&ctx.metrics.accepted);
                            conns.push(conn);
                            progressed = true;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    // Transient accept failures (EMFILE, ECONNABORTED):
                    // back off this pass rather than spin or die.
                    Err(_) => break,
                }
            }
        }

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            let close = match conns.get_mut(i) {
                Some(conn) => {
                    let pumped = pump_conn(conn, ctx, now);
                    progressed |= pumped.progressed;
                    pumped.close
                }
                None => None,
            };
            match close {
                Some(reason) => {
                    let conn = conns.swap_remove(i);
                    close_conn(conn, reason, ctx);
                }
                None => i += 1,
            }
        }

        if draining {
            drain_shard(conns, ctx);
            return;
        }
        if !progressed {
            std::thread::sleep(IDLE_BACKOFF);
        }
    }
}

struct Pumped {
    progressed: bool,
    close: Option<CloseReason>,
}

/// One pump pass over one connection: read + decode, bounds-check and
/// admit queries, poll in-flight tickets, flush.
fn pump_conn(conn: &mut Conn, ctx: &ShardCtx<'_, '_>, now: Instant) -> Pumped {
    let outcome = conn.read_queries(ctx.limits, now);
    let mut progressed = !outcome.queries.is_empty();
    for query in outcome.queries {
        bump(&ctx.metrics.queries);
        dispatch_query(conn, query, ctx);
    }
    let resolved = conn.pump_pending();
    bump_n(&ctx.metrics.answers, resolved.answers as u64);
    bump_n(&ctx.metrics.rejects, resolved.rejects as u64);
    progressed |= resolved.total() > 0;
    if let Err(reason) = conn.flush() {
        return Pumped { progressed, close: Some(reason) };
    }
    let close = match outcome.close {
        Some(reason) => Some(reason),
        None if conn.is_idle(now, ctx.config.idle_timeout) => Some(CloseReason::Idle),
        None => None,
    };
    Pumped { progressed, close }
}

/// Wire query → bounds check → serving queue.
///
/// The budget bounds run *before* admission (satellite of the deadline
/// bugfix): a hostile `deadline_ms`/`max_staleness_ms` gets a typed
/// reject frame and never touches the queue, so no frame can park a
/// request past the server's promised freshness. The serving layer
/// enforces the same bounds for in-process callers — this check is the
/// wire-facing copy, cheap enough to run per frame.
fn dispatch_query(conn: &mut Conn, query: QueryFrame, ctx: &ShardCtx<'_, '_>) {
    if let Some(ms) = query.deadline_ms {
        let requested = Duration::from_millis(u64::from(ms));
        if requested > ctx.deadline_bound {
            bump(&ctx.metrics.rejects);
            bump(&ctx.metrics.bounds_rejects);
            conn.push_reject(
                query.request_id,
                RejectCode::DeadlineOutOfBounds,
                format!("deadline {requested:?} exceeds the {:?} bound", ctx.deadline_bound),
            );
            return;
        }
    }
    if let Some(ms) = query.max_staleness_ms {
        let requested = Duration::from_millis(u64::from(ms));
        if requested > ctx.staleness_bound {
            bump(&ctx.metrics.rejects);
            bump(&ctx.metrics.bounds_rejects);
            conn.push_reject(
                query.request_id,
                RejectCode::StalenessOutOfBounds,
                format!("max_staleness {requested:?} exceeds the {:?} TTL", ctx.staleness_bound),
            );
            return;
        }
    }
    let mut roads = Vec::with_capacity(query.roads.len());
    for raw in &query.roads {
        roads.push(RoadId(*raw));
    }
    let request = ServeRequest {
        roads,
        slot: SlotOfDay(query.slot),
        deadline: query.deadline_ms.map(|ms| Duration::from_millis(u64::from(ms))),
        max_staleness: query.max_staleness_ms.map(|ms| Duration::from_millis(u64::from(ms))),
    };
    match ctx.handle.submit(request) {
        Ok(ticket) => conn.track(query.request_id, ticket),
        Err(err) => {
            bump(&ctx.metrics.rejects);
            conn.push_reply(query.request_id, Err(err));
        }
    }
}

/// Closes one connection: best-effort GoAway, counter bookkeeping.
fn close_conn(mut conn: Conn, reason: CloseReason, ctx: &ShardCtx<'_, '_>) {
    let obs = &ctx.config.obs;
    match reason {
        CloseReason::Protocol(err) => {
            bump(&ctx.metrics.protocol_errors);
            conn.push_goaway(GoAwayCode::ProtocolError, err.to_string());
        }
        CloseReason::UnexpectedFrame => {
            bump(&ctx.metrics.protocol_errors);
            conn.push_goaway(
                GoAwayCode::ProtocolError,
                "client sent a server-only frame type".to_string(),
            );
        }
        CloseReason::Idle => {
            bump(&ctx.metrics.idle_closed);
            conn.push_goaway(GoAwayCode::IdleTimeout, String::new());
        }
        // The peer is gone; nothing to say and nobody to hear it.
        CloseReason::PeerGone => {}
    }
    let _ = conn.flush();
    bump(&ctx.metrics.closed);
    obs.gauge_add(Stage::EdgeConnActive, -1);
    // Dropping `conn` closes the socket; in-flight tickets are abandoned
    // and the serving layer computes-and-discards their replies.
}

/// Orderly drain of one shard's connections: resolve every in-flight
/// ticket (the serving layer is still live), flush, GoAway, close.
fn drain_shard(mut conns: Vec<Conn>, ctx: &ShardCtx<'_, '_>) {
    // The serving layer still accepts nothing new from us (the edge stops
    // dispatching), but every already-submitted ticket will resolve —
    // serve's own drain begins only after this scope joins.
    loop {
        let mut in_flight = 0;
        for conn in &mut conns {
            let resolved = conn.pump_pending();
            bump_n(&ctx.metrics.answers, resolved.answers as u64);
            bump_n(&ctx.metrics.rejects, resolved.rejects as u64);
            let _ = conn.flush();
            in_flight += conn.pending_len();
        }
        if in_flight == 0 {
            break;
        }
        std::thread::sleep(IDLE_BACKOFF);
    }
    for mut conn in conns {
        conn.push_goaway(GoAwayCode::ShuttingDown, String::new());
        let _ = conn.flush_blocking(DRAIN_FLUSH_BUDGET);
        bump(&ctx.metrics.closed);
        ctx.config.obs.gauge_add(Stage::EdgeConnActive, -1);
    }
}
