//! Per-connection state: buffered nonblocking I/O, incremental decode,
//! pending-ticket fan-in.
//!
//! A [`Conn`] is owned by exactly one shard thread (the shard's registry
//! is a plain `Vec<Conn>`), so none of this state needs a lock — the
//! shard loop is the only reader and writer. Cross-thread coordination
//! happens one layer up, through the serving queue and the shutdown
//! flag.

use crate::frame::{
    decode_frame, encode_frame, AnswerFrame, DecodeLimits, Frame, FrameError, GoAwayCode,
    GoAwayFrame, QueryFrame, RejectCode, RejectFrame,
};
use rtse_obs::{ObsHandle, Stage};
use rtse_serve::{ServeError, ServedAnswer, Ticket};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read-chunk size for the socket pump. Frames larger than this are
/// assembled across reads by the incremental decoder.
const READ_CHUNK: usize = 4096;

/// Why a connection is being closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CloseReason {
    /// The peer sent bytes that are not a frame (decoder is fail-closed).
    Protocol(FrameError),
    /// The peer sent a frame type only the server may send.
    UnexpectedFrame,
    /// The peer closed or reset the connection.
    PeerGone,
    /// No frame arrived within the idle timeout.
    Idle,
}

/// How one ticket-pump pass resolved.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Resolved {
    /// Tickets that resolved to an answer frame.
    pub answers: usize,
    /// Tickets that resolved to a typed reject frame.
    pub rejects: usize,
}

impl Resolved {
    /// Total tickets resolved this pass.
    pub(crate) fn total(&self) -> usize {
        self.answers + self.rejects
    }
}

/// What one read pump produced.
pub(crate) struct ReadOutcome {
    /// Complete queries decoded this pump, in arrival order.
    pub queries: Vec<QueryFrame>,
    /// Set when the connection must now be closed.
    pub close: Option<CloseReason>,
}

/// One accepted client connection.
pub(crate) struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    woff: usize,
    /// In-flight requests: wire request id paired with its serve ticket.
    pending: Vec<(u64, Ticket)>,
    last_active: Instant,
    /// Records `edge.frame_decode` spans (one per complete frame) and
    /// `edge.write` spans (one per non-empty flush).
    obs: ObsHandle,
}

impl Conn {
    /// Wraps an accepted stream. The stream is switched to nonblocking
    /// mode; Nagle is disabled because frames are latency-sensitive and
    /// already batched by the serving layer.
    pub(crate) fn new(stream: TcpStream, now: Instant, obs: ObsHandle) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            woff: 0,
            pending: Vec::new(),
            last_active: now,
            obs,
        })
    }

    /// Pumps the socket: reads whatever is available, decodes every
    /// complete frame, and returns the queries (plus a close verdict if
    /// the stream ended or the bytes were not protocol).
    pub(crate) fn read_queries(&mut self, limits: DecodeLimits, now: Instant) -> ReadOutcome {
        let mut out = ReadOutcome { queries: Vec::new(), close: None };
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    out.close = Some(CloseReason::PeerGone);
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_active = now;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    out.close = Some(CloseReason::PeerGone);
                    break;
                }
            }
        }
        let mut consumed = 0;
        loop {
            let started = Instant::now();
            match decode_frame(self.rbuf.get(consumed..).unwrap_or(&[]), limits) {
                Ok(Some((Frame::Query(q), n))) => {
                    consumed += n;
                    self.obs.record_duration(Stage::EdgeFrameDecode, started.elapsed());
                    out.queries.push(q);
                }
                Ok(Some((_, _))) => {
                    // Answer/Reject/GoAway travel server → client only.
                    out.close = Some(CloseReason::UnexpectedFrame);
                    break;
                }
                Ok(None) => break,
                Err(e) => {
                    out.close = Some(CloseReason::Protocol(e));
                    break;
                }
            }
        }
        if consumed > 0 {
            self.rbuf.drain(..consumed);
        }
        out
    }

    /// Registers an admitted request awaiting its serve answer.
    pub(crate) fn track(&mut self, request_id: u64, ticket: Ticket) {
        self.pending.push((request_id, ticket));
    }

    /// Polls every in-flight ticket; resolved ones are encoded into the
    /// write buffer (answer or typed reject) and dropped from the
    /// pending set.
    pub(crate) fn pump_pending(&mut self) -> Resolved {
        let mut resolved = Resolved { answers: 0, rejects: 0 };
        let mut i = 0;
        while i < self.pending.len() {
            let reply = self.pending.get(i).and_then(|(_, ticket)| ticket.poll());
            match reply {
                Some(result) => {
                    let (request_id, _) = self.pending.swap_remove(i);
                    if result.is_ok() {
                        resolved.answers += 1;
                    } else {
                        resolved.rejects += 1;
                    }
                    self.push_reply(request_id, result);
                }
                None => i += 1,
            }
        }
        resolved
    }

    /// In-flight requests currently awaiting an answer.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Encodes a serve reply (answer or typed reject) for the peer.
    pub(crate) fn push_reply(&mut self, request_id: u64, reply: Result<ServedAnswer, ServeError>) {
        let frame = match reply {
            Ok(answer) => Frame::Answer(answer_frame(request_id, &answer)),
            Err(err) => Frame::Reject(reject_frame(request_id, &err)),
        };
        encode_frame(&frame, &mut self.wbuf);
    }

    /// Encodes a pre-admission typed reject (edge-side bounds check).
    pub(crate) fn push_reject(&mut self, request_id: u64, code: RejectCode, detail: String) {
        encode_frame(&Frame::Reject(RejectFrame { request_id, code, detail }), &mut self.wbuf);
    }

    /// Encodes the orderly-close notification.
    pub(crate) fn push_goaway(&mut self, code: GoAwayCode, detail: String) {
        encode_frame(&Frame::GoAway(GoAwayFrame { code, detail }), &mut self.wbuf);
    }

    /// Bytes queued for the peer but not yet written.
    pub(crate) fn unflushed(&self) -> usize {
        self.wbuf.len() - self.woff
    }

    /// Writes as much of the buffered output as the socket accepts.
    /// `Ok(true)` when the buffer fully drained; `Err` means the peer is
    /// gone and the connection must be dropped.
    pub(crate) fn flush(&mut self) -> Result<bool, CloseReason> {
        let _span =
            if self.woff < self.wbuf.len() { Some(self.obs.span(Stage::EdgeWrite)) } else { None };
        while self.woff < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.woff..]) {
                Ok(0) => return Err(CloseReason::PeerGone),
                Ok(n) => self.woff += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Err(CloseReason::PeerGone),
            }
        }
        self.wbuf.clear();
        self.woff = 0;
        Ok(true)
    }

    /// Whether the connection has been silent past the idle timeout.
    /// Connections with requests still in flight are never idle — the
    /// silence is ours, not the peer's.
    pub(crate) fn is_idle(&self, now: Instant, timeout: Duration) -> bool {
        self.pending.is_empty()
            && self.unflushed() == 0
            && now.duration_since(self.last_active) > timeout
    }

    /// Blocks until the write buffer drains or `budget` elapses — the
    /// final flush of an orderly close, where losing buffered answers
    /// would violate the no-request-dropped-answerless guarantee.
    pub(crate) fn flush_blocking(&mut self, budget: Duration) -> Result<(), CloseReason> {
        let start = Instant::now();
        loop {
            if self.flush()? {
                return Ok(());
            }
            if start.elapsed() >= budget {
                return Err(CloseReason::PeerGone);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Converts a serve answer to its wire form.
fn answer_frame(request_id: u64, answer: &ServedAnswer) -> AnswerFrame {
    let mut roads = Vec::with_capacity(answer.roads.len());
    for road in &answer.roads {
        roads.push(road.0);
    }
    AnswerFrame {
        request_id,
        generation: answer.generation,
        age_us: duration_us(answer.age),
        wait_us: duration_us(answer.wait),
        slot: answer.slot.0,
        cache_hit: answer.cache_hit,
        roads,
        speeds: answer.estimates.clone(),
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Maps every serve rejection onto its wire code. The detail string is
/// the error's own rendering, so clients see the same message in-process
/// callers would.
fn reject_frame(request_id: u64, err: &ServeError) -> RejectFrame {
    let code = match err {
        ServeError::QueueFull { .. } => RejectCode::QueueFull,
        ServeError::DeadlineExceeded { .. } => RejectCode::DeadlineExceeded,
        ServeError::ShuttingDown => RejectCode::ShuttingDown,
        ServeError::EmptyQuery => RejectCode::EmptyQuery,
        ServeError::RoadOutOfRange { .. } => RejectCode::RoadOutOfRange,
        ServeError::SlotOutOfRange { .. } => RejectCode::SlotOutOfRange,
        ServeError::DeadlineOutOfBounds { .. } => RejectCode::DeadlineOutOfBounds,
        ServeError::StalenessOutOfBounds { .. } => RejectCode::StalenessOutOfBounds,
        ServeError::WorldMismatch { .. } => RejectCode::WorldMismatch,
        ServeError::InvalidConfig(_) | ServeError::ChannelClosed => RejectCode::Internal,
    };
    RejectFrame { request_id, code, detail: err.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_codes_cover_every_serve_error() {
        use std::time::Duration;
        let cases = [
            (ServeError::QueueFull { depth: 1 }, RejectCode::QueueFull),
            (
                ServeError::DeadlineExceeded { missed_by: Duration::ZERO },
                RejectCode::DeadlineExceeded,
            ),
            (ServeError::ShuttingDown, RejectCode::ShuttingDown),
            (ServeError::EmptyQuery, RejectCode::EmptyQuery),
            (ServeError::ChannelClosed, RejectCode::Internal),
        ];
        for (err, code) in cases {
            let frame = reject_frame(7, &err);
            assert_eq!(frame.code, code);
            assert_eq!(frame.request_id, 7);
            assert!(!frame.detail.is_empty());
        }
    }
}
