//! # rtse-edge — the wire in front of the serving layer
//!
//! `rtse-serve` answers speed queries in-process; this crate puts a TCP
//! socket in front of it, turning the paper's "realtime estimation" into
//! an actual network service:
//!
//! * **Wire protocol** ([`frame`]): length-prefixed binary frames
//!   (magic, version, request id, deadline/staleness budgets, road/slot
//!   payload). The decoder is incremental and fail-closed — every
//!   malformed byte is a typed [`FrameError`], an adversarial length
//!   prefix is rejected before any payload is buffered, and a partial
//!   read at any byte boundary just waits for more bytes.
//! * **Sharded accept loops** ([`server`]): `RTSE_EDGE_SHARDS` listener
//!   threads (on the workspace compute pool), each owning its accepted
//!   connections outright — decode, pre-admission bounds checks, submit
//!   to the serving queue, fan answers back by request id, idle
//!   timeouts. The only cross-thread contention is the serving queue,
//!   which is exactly the backpressure boundary it is meant to be.
//! * **Slot-rollover prewarm** ([`rollover`]): a background thread
//!   builds the *next* 5-minute slot's correlation table and warms its
//!   answer cache before the boundary, so rollover stops being a
//!   recurring latency cliff (`BENCH_edge.json` records before/after).
//! * **Graceful drain**: shutdown resolves every in-flight request on
//!   the wire — answer or typed reject — flushes each connection, and
//!   says goodbye with a typed `GoAway` frame. No accepted request is
//!   dropped answerless.
//!
//! Everything is std-only: sockets from `std::net`, shared state through
//! `rtse-sync`, threads through `rtse-pool`.

pub mod client;
pub mod config;
mod conn;
pub mod error;
pub mod frame;
pub mod rollover;
pub mod server;

pub use client::{ClientError, ClientReply, EdgeClient};
pub use config::{EdgeConfig, PrewarmConfig, MAX_ROADS_PER_QUERY, MAX_SHARDS, SHARDS_ENV};
pub use error::EdgeError;
pub use frame::{
    decode_frame, encode_frame, AnswerFrame, DecodeLimits, Frame, FrameError, GoAwayCode,
    GoAwayFrame, QueryFrame, RejectCode, RejectFrame, HEADER_LEN, MAGIC, VERSION,
};
pub use rollover::SlotClock;
pub use server::{edge_serve, EdgeHandle, EdgeMetrics, EdgeMetricsSnapshot, EdgeOutcome};
