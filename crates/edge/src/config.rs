//! Edge configuration and its environment knobs.

use rtse_check::InvariantViolation;
use rtse_data::SlotOfDay;
use rtse_obs::ObsHandle;
use std::time::Duration;

/// Environment override for the number of listener shards.
pub const SHARDS_ENV: &str = "RTSE_EDGE_SHARDS";

/// Most listener shards a config may ask for. Each shard is one OS
/// thread on the compute pool; beyond this the accept path is never the
/// bottleneck — the shared serving queue is.
pub const MAX_SHARDS: usize = 64;

/// Most roads one wire query may name. Also bounds the decoder's
/// per-frame allocation (see [`crate::frame::DecodeLimits`]).
pub const MAX_ROADS_PER_QUERY: u32 = 4096;

/// Slot-rollover prewarm: a background loop that builds the *next*
/// slot's correlation table (and warms its answer cache) shortly before
/// the slot boundary, so the first post-rollover query pays a warm
/// lookup instead of `|R|` Dijkstras stacked on a fresh GSP round.
#[derive(Debug, Clone)]
pub struct PrewarmConfig {
    /// Wall-clock length of one slot. The paper's slots are 5 minutes;
    /// benchmarks compress this to seconds to cross many boundaries per
    /// run (the rollover cliff is about crossing boundaries, not about
    /// how far apart they are).
    pub slot_len: Duration,
    /// How long before the boundary the warm starts. Must leave room for
    /// one Γ build plus one shared round at the deployment's scale.
    pub lead: Duration,
    /// Slot the clock reads at its epoch (the moment the edge starts).
    pub base_slot: SlotOfDay,
}

impl PrewarmConfig {
    /// Paper-faithful timing: 5-minute slots, warmed 30 s ahead,
    /// starting from slot 0.
    pub fn realtime() -> Self {
        Self {
            slot_len: Duration::from_secs(300),
            lead: Duration::from_secs(30),
            base_slot: SlotOfDay(0),
        }
    }
}

impl rtse_check::Validate for PrewarmConfig {
    fn validate(&self) -> Result<(), InvariantViolation> {
        rtse_check::ensure(!self.slot_len.is_zero(), "edge.prewarm_slot_len_positive", || {
            "prewarm slot_len is zero; every instant would be a rollover".into()
        })?;
        rtse_check::ensure(
            !self.lead.is_zero() && self.lead < self.slot_len,
            "edge.prewarm_lead_within_slot",
            || {
                format!(
                    "prewarm lead {:?} must be positive and shorter than the {:?} slot",
                    self.lead, self.slot_len
                )
            },
        )
    }
}

/// Knobs of one edge deployment.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Listen address. Port 0 binds an ephemeral port; the bound address
    /// is reported by [`crate::EdgeHandle::addr`].
    pub addr: String,
    /// Listener shard threads sharing the accept socket. `0` reads
    /// [`SHARDS_ENV`], defaulting to 1.
    pub shards: usize,
    /// Most roads one query frame may name; larger frames are rejected
    /// by the decoder before the road list is materialized.
    pub max_roads_per_query: u32,
    /// Connections silent for longer than this are closed with a typed
    /// `GoAway(IdleTimeout)` frame.
    pub idle_timeout: Duration,
    /// Slot-rollover prewarm; `None` disables the background warmer
    /// (every boundary then pays the cold-build cliff).
    pub prewarm: Option<PrewarmConfig>,
    /// Observability handle the edge records into (`edge.*` stages).
    /// No-op by default; share a registry with the serving layer for one
    /// combined snapshot.
    pub obs: ObsHandle,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 0,
            max_roads_per_query: 64,
            idle_timeout: Duration::from_secs(30),
            prewarm: None,
            obs: ObsHandle::noop(),
        }
    }
}

impl EdgeConfig {
    /// The default configuration with any `RTSE_EDGE_*` environment
    /// overrides applied.
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// Applies the `RTSE_EDGE_*` environment overrides ([`SHARDS_ENV`]).
    /// Unset or unparsable variables leave the field untouched.
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(n) = env_usize(SHARDS_ENV) {
            if n >= 1 {
                self.shards = n;
            }
        }
        self
    }

    /// Listener shards after resolving the `0 = from env` default.
    pub fn resolved_shards(&self) -> usize {
        match self.shards {
            0 => env_usize(SHARDS_ENV).filter(|&n| n >= 1).unwrap_or(1),
            n => n,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|raw| raw.trim().parse::<usize>().ok())
}

impl rtse_check::Validate for EdgeConfig {
    fn validate(&self) -> Result<(), InvariantViolation> {
        rtse_check::ensure(self.resolved_shards() <= MAX_SHARDS, "edge.shards_bounded", || {
            format!("{} listener shards; the cap is {MAX_SHARDS}", self.resolved_shards())
        })?;
        rtse_check::ensure(
            (1..=MAX_ROADS_PER_QUERY).contains(&self.max_roads_per_query),
            "edge.max_roads_in_range",
            || {
                format!(
                    "max_roads_per_query {} outside 1..={MAX_ROADS_PER_QUERY}",
                    self.max_roads_per_query
                )
            },
        )?;
        rtse_check::ensure(!self.idle_timeout.is_zero(), "edge.idle_timeout_positive", || {
            "idle_timeout is zero; every connection would be closed on arrival".into()
        })?;
        if let Some(prewarm) = &self.prewarm {
            prewarm.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_check::Validate;

    #[test]
    fn default_config_is_valid() {
        EdgeConfig::default().validate().expect("default must validate");
    }

    #[test]
    fn invalid_configs_name_their_invariant() {
        let too_many = EdgeConfig { shards: MAX_SHARDS + 1, ..Default::default() };
        assert_eq!(too_many.validate().expect_err("must fail").invariant, "edge.shards_bounded");

        let no_roads = EdgeConfig { max_roads_per_query: 0, ..Default::default() };
        assert_eq!(
            no_roads.validate().expect_err("must fail").invariant,
            "edge.max_roads_in_range"
        );

        let instant_idle = EdgeConfig { idle_timeout: Duration::ZERO, ..Default::default() };
        assert_eq!(
            instant_idle.validate().expect_err("must fail").invariant,
            "edge.idle_timeout_positive"
        );

        let eager = EdgeConfig {
            prewarm: Some(PrewarmConfig {
                slot_len: Duration::from_secs(2),
                lead: Duration::from_secs(2),
                base_slot: SlotOfDay(0),
            }),
            ..Default::default()
        };
        assert_eq!(
            eager.validate().expect_err("must fail").invariant,
            "edge.prewarm_lead_within_slot"
        );
    }

    #[test]
    fn realtime_prewarm_is_paper_faithful() {
        let p = PrewarmConfig::realtime();
        p.validate().expect("must validate");
        assert_eq!(p.slot_len, Duration::from_secs(300));
    }
}
