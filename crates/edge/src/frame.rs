//! The rtse-edge wire protocol: length-prefixed binary frames.
//!
//! Every frame is a fixed 20-byte header followed by a typed payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x52545345 ("RTSE"), big-endian
//!      4     1  version      protocol version (1)
//!      5     1  frame type   1=Query 2=Answer 3=Reject 4=GoAway
//!      6     2  reserved     must be zero (fail-closed)
//!      8     8  request id   client-chosen, echoed on the response
//!     16     4  payload len  bytes following the header
//!     20     …  payload      layout per frame type (below)
//! ```
//!
//! All integers are big-endian; speeds travel as IEEE-754 bit patterns
//! (`f64::to_bits`), so values round-trip bit-identically.
//!
//! The decoder is **incremental** and **fail-closed**: [`decode_frame`]
//! returns `Ok(None)` while the buffer holds only a frame prefix, a typed
//! [`FrameError`] on the first malformed byte, and it validates the header
//! — magic, version, type, reserved bytes, and the length prefix against
//! the caller's cap — *before* asking for (or allocating) payload space.
//! A hostile length prefix is rejected from 20 buffered bytes, never
//! buffered out.

use std::fmt;

/// Frame magic: `"RTSE"` as a big-endian u32.
pub const MAGIC: u32 = 0x5254_5345;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 20;
/// Fixed (pre-road-list) portion of a query payload.
pub const QUERY_FIXED_LEN: usize = 12;
/// Fixed (pre-estimate-list) portion of an answer payload.
pub const ANSWER_FIXED_LEN: usize = 32;
/// Sentinel for "field not set" in the u32 millisecond budget fields.
pub const UNSET_MS: u32 = u32::MAX;

const TYPE_QUERY: u8 = 1;
const TYPE_ANSWER: u8 = 2;
const TYPE_REJECT: u8 = 3;
const TYPE_GOAWAY: u8 = 4;

/// Why a buffered byte sequence is not a frame. Every variant is a
/// protocol violation: the connection that produced it is torn down with
/// a [`GoAwayCode::ProtocolError`] — the decoder never guesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// What arrived instead.
        got: u32,
    },
    /// The version byte names a protocol this build does not speak.
    BadVersion {
        /// What arrived.
        got: u8,
    },
    /// The frame-type byte names no known frame.
    BadType {
        /// What arrived.
        got: u8,
    },
    /// The reserved header bytes were not zero.
    ReservedNotZero {
        /// What arrived.
        got: u16,
    },
    /// The length prefix exceeds the receiver's payload cap. Checked
    /// before any payload byte is awaited, so an adversarial prefix can
    /// never drive a large allocation.
    Oversize {
        /// The declared payload length.
        len: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// The payload length does not match the type's layout (e.g. a query
    /// whose length disagrees with its road count).
    LengthMismatch {
        /// Length the layout requires.
        expected: u32,
        /// Length the header declared.
        got: u32,
    },
    /// A query names more roads than the receiver accepts per frame.
    TooManyRoads {
        /// The declared road count.
        count: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// A reject/goaway code byte pair names no known code.
    BadCode {
        /// What arrived.
        got: u16,
    },
    /// A boolean byte was neither 0 nor 1.
    BadBool {
        /// What arrived.
        got: u8,
    },
    /// A detail string was not UTF-8.
    BadUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:#010x}"),
            FrameError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            FrameError::BadType { got } => write!(f, "unknown frame type {got}"),
            FrameError::ReservedNotZero { got } => {
                write!(f, "reserved header bytes must be zero, got {got:#06x}")
            }
            FrameError::Oversize { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            FrameError::LengthMismatch { expected, got } => {
                write!(f, "payload length {got} does not match the layout ({expected})")
            }
            FrameError::TooManyRoads { count, max } => {
                write!(f, "query names {count} roads, more than the {max} cap")
            }
            FrameError::BadCode { got } => write!(f, "unknown status code {got}"),
            FrameError::BadBool { got } => write!(f, "boolean byte must be 0 or 1, got {got}"),
            FrameError::BadUtf8 => write!(f, "detail string is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a request was rejected, on the wire. Mirrors
/// [`rtse_serve::ServeError`] plus the edge's own pre-admission bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum RejectCode {
    /// Admission queue at capacity — back off and retry.
    QueueFull = 1,
    /// The deadline expired before an answer was produced.
    DeadlineExceeded = 2,
    /// The server is draining; no new requests.
    ShuttingDown = 3,
    /// The query named no roads.
    EmptyQuery = 4,
    /// A road id is not a road of the served network.
    RoadOutOfRange = 5,
    /// The slot is not a slot of the day.
    SlotOutOfRange = 6,
    /// The serving world rejected the round (dimension mismatch).
    WorldMismatch = 7,
    /// The server answered with an internal error.
    Internal = 8,
    /// The wire deadline exceeds the server's admissible bound
    /// (checked pre-admission; see `EdgeConfig`).
    DeadlineOutOfBounds = 9,
    /// The wire staleness budget exceeds the server's TTL bound
    /// (checked pre-admission; a hostile value could otherwise let a
    /// cached round older than the TTL escape).
    StalenessOutOfBounds = 10,
}

impl RejectCode {
    /// Every code, for decode validation.
    pub const ALL: [RejectCode; 10] = [
        RejectCode::QueueFull,
        RejectCode::DeadlineExceeded,
        RejectCode::ShuttingDown,
        RejectCode::EmptyQuery,
        RejectCode::RoadOutOfRange,
        RejectCode::SlotOutOfRange,
        RejectCode::WorldMismatch,
        RejectCode::Internal,
        RejectCode::DeadlineOutOfBounds,
        RejectCode::StalenessOutOfBounds,
    ];

    fn from_u16(raw: u16) -> Result<Self, FrameError> {
        Self::ALL.iter().copied().find(|c| *c as u16 == raw).ok_or(FrameError::BadCode { got: raw })
    }
}

/// Why the server is closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum GoAwayCode {
    /// Orderly drain: every accepted request was answered first.
    ShuttingDown = 1,
    /// The peer sent a malformed frame; the decoder is fail-closed.
    ProtocolError = 2,
    /// The connection sat idle past the configured timeout.
    IdleTimeout = 3,
}

impl GoAwayCode {
    /// Every code, for decode validation.
    pub const ALL: [GoAwayCode; 3] =
        [GoAwayCode::ShuttingDown, GoAwayCode::ProtocolError, GoAwayCode::IdleTimeout];

    fn from_u16(raw: u16) -> Result<Self, FrameError> {
        Self::ALL.iter().copied().find(|c| *c as u16 == raw).ok_or(FrameError::BadCode { got: raw })
    }
}

/// A speed query, client → server.
///
/// Payload: `[deadline_ms: u32][max_staleness_ms: u32][slot: u16]
/// [road_count: u16][road: u32 × count]`. [`UNSET_MS`] in a budget field
/// defers to the server's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFrame {
    /// Client-chosen id, echoed on the answer/reject.
    pub request_id: u64,
    /// Latency budget in ms; `None` defers to the server default.
    pub deadline_ms: Option<u32>,
    /// Freshness budget in ms; `None` defers to the server TTL.
    pub max_staleness_ms: Option<u32>,
    /// Queried slot of the day (raw; the server bounds-checks it).
    pub slot: u16,
    /// Queried road ids (raw; the server bounds-checks them).
    pub roads: Vec<u32>,
}

/// An estimate, server → client.
///
/// Payload: `[generation: u64][age_us: u64][wait_us: u64][slot: u16]
/// [cache_hit: u8][reserved: u8][count: u32][(road: u32, speed bits: u64)
/// × count]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerFrame {
    /// Echo of the query's request id.
    pub request_id: u64,
    /// Cache generation of the round that produced the estimates.
    pub generation: u64,
    /// Age of that round at fan-out, in microseconds.
    pub age_us: u64,
    /// Submission-to-fan-out latency, in microseconds.
    pub wait_us: u64,
    /// The answered slot.
    pub slot: u16,
    /// Whether the round came from the slot cache.
    pub cache_hit: bool,
    /// The answered roads (canonical order).
    pub roads: Vec<u32>,
    /// Estimated speed per road, parallel to `roads`.
    pub speeds: Vec<f64>,
}

/// A typed per-request rejection, server → client.
///
/// Payload: `[code: u16][detail_len: u16][detail: UTF-8]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectFrame {
    /// Echo of the query's request id.
    pub request_id: u64,
    /// Why the request was rejected.
    pub code: RejectCode,
    /// Human-readable detail (may be empty).
    pub detail: String,
}

/// Orderly close notification, server → client. `request_id` is 0.
///
/// Payload: `[code: u16][detail_len: u16][detail: UTF-8]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoAwayFrame {
    /// Why the connection is closing.
    pub code: GoAwayCode,
    /// Human-readable detail (may be empty).
    pub detail: String,
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server speed query.
    Query(QueryFrame),
    /// Server → client estimate.
    Answer(AnswerFrame),
    /// Server → client typed rejection.
    Reject(RejectFrame),
    /// Server → client orderly close.
    GoAway(GoAwayFrame),
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Query(_) => TYPE_QUERY,
            Frame::Answer(_) => TYPE_ANSWER,
            Frame::Reject(_) => TYPE_REJECT,
            Frame::GoAway(_) => TYPE_GOAWAY,
        }
    }

    fn request_id(&self) -> u64 {
        match self {
            Frame::Query(q) => q.request_id,
            Frame::Answer(a) => a.request_id,
            Frame::Reject(r) => r.request_id,
            Frame::GoAway(_) => 0,
        }
    }
}

/// Most (road, speed) pairs an answer payload can carry without its byte
/// length overflowing the u32 length prefix.
const MAX_ANSWER_PAIRS: usize = (u32::MAX as usize - ANSWER_FIXED_LEN) / 12;

/// Roads a query frame encodes: clamped to the u16 count field's range so
/// an oversized list truncates the tail instead of silently wrapping the
/// count and desynchronizing the framing.
fn query_road_count(q: &QueryFrame) -> usize {
    q.roads.len().min(u16::MAX as usize)
}

/// (road, speed) pairs an answer frame encodes: the shorter of the two
/// parallel lists, clamped so the payload length fits the u32 prefix.
fn answer_pair_count(a: &AnswerFrame) -> usize {
    a.roads.len().min(a.speeds.len()).min(MAX_ANSWER_PAIRS)
}

/// Truncates a detail string to the u16 length field's range, backing off
/// to a char boundary so the encoded bytes stay valid UTF-8.
fn clamp_detail(detail: &str) -> &str {
    let max = u16::MAX as usize;
    if detail.len() <= max {
        return detail;
    }
    let mut end = max;
    while end > 0 && !detail.is_char_boundary(end) {
        end -= 1;
    }
    detail.get(..end).unwrap_or("")
}

/// Appends `frame` to `out` in wire format. Infallible: counts and detail
/// lengths are clamped to their wire fields' ranges *before* the narrowing
/// casts (oversized road lists and detail strings encode a truncated
/// prefix), so no length field ever silently wraps.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let payload_len = match frame {
        Frame::Query(q) => QUERY_FIXED_LEN + 4 * query_road_count(q),
        Frame::Answer(a) => ANSWER_FIXED_LEN + 12 * answer_pair_count(a),
        Frame::Reject(r) => 4 + clamp_detail(&r.detail).len(),
        Frame::GoAway(g) => 4 + clamp_detail(&g.detail).len(),
    };
    out.reserve(HEADER_LEN + payload_len);
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&[VERSION, frame.type_byte(), 0, 0]);
    out.extend_from_slice(&frame.request_id().to_be_bytes());
    out.extend_from_slice(&(payload_len as u32).to_be_bytes());
    match frame {
        Frame::Query(q) => {
            let count = query_road_count(q);
            out.extend_from_slice(&q.deadline_ms.unwrap_or(UNSET_MS).to_be_bytes());
            out.extend_from_slice(&q.max_staleness_ms.unwrap_or(UNSET_MS).to_be_bytes());
            out.extend_from_slice(&q.slot.to_be_bytes());
            out.extend_from_slice(&(count as u16).to_be_bytes());
            for road in q.roads.iter().take(count) {
                out.extend_from_slice(&road.to_be_bytes());
            }
        }
        Frame::Answer(a) => {
            let count = answer_pair_count(a);
            out.extend_from_slice(&a.generation.to_be_bytes());
            out.extend_from_slice(&a.age_us.to_be_bytes());
            out.extend_from_slice(&a.wait_us.to_be_bytes());
            out.extend_from_slice(&a.slot.to_be_bytes());
            out.extend_from_slice(&[u8::from(a.cache_hit), 0]);
            out.extend_from_slice(&(count as u32).to_be_bytes());
            for (road, speed) in a.roads.iter().zip(&a.speeds).take(count) {
                out.extend_from_slice(&road.to_be_bytes());
                out.extend_from_slice(&speed.to_bits().to_be_bytes());
            }
        }
        Frame::Reject(r) => {
            let detail = clamp_detail(&r.detail);
            out.extend_from_slice(&(r.code as u16).to_be_bytes());
            out.extend_from_slice(&(detail.len() as u16).to_be_bytes());
            out.extend_from_slice(detail.as_bytes());
        }
        Frame::GoAway(g) => {
            let detail = clamp_detail(&g.detail);
            out.extend_from_slice(&(g.code as u16).to_be_bytes());
            out.extend_from_slice(&(detail.len() as u16).to_be_bytes());
            out.extend_from_slice(detail.as_bytes());
        }
    }
}

/// Limits the decoder enforces before trusting a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Largest admissible payload length. A length prefix beyond this is
    /// [`FrameError::Oversize`] — rejected from the 20 header bytes alone.
    pub max_payload: u32,
    /// Most roads one query frame may name.
    pub max_roads: u32,
}

impl DecodeLimits {
    /// Limits sized for a given per-query road cap: the payload cap covers
    /// the largest frame either direction can legitimately produce for
    /// that many roads (an answer's 12 bytes/road dominates).
    pub fn for_max_roads(max_roads: u32) -> Self {
        let fixed = ANSWER_FIXED_LEN.max(QUERY_FIXED_LEN) as u32;
        Self { max_payload: fixed.saturating_add(max_roads.saturating_mul(12)), max_roads }
    }
}

fn read_u16(buf: &[u8], off: usize) -> Option<u16> {
    let bytes: [u8; 2] = buf.get(off..off + 2)?.try_into().ok()?;
    Some(u16::from_be_bytes(bytes))
}

fn read_u32(buf: &[u8], off: usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(off..off + 4)?.try_into().ok()?;
    Some(u32::from_be_bytes(bytes))
}

fn read_u64(buf: &[u8], off: usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(off..off + 8)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

fn budget_ms(raw: u32) -> Option<u32> {
    if raw == UNSET_MS {
        None
    } else {
        Some(raw)
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds a valid prefix of a frame; read more bytes.
/// * `Ok(Some((frame, consumed)))` — one complete frame; drop `consumed`
///   bytes from the buffer front.
/// * `Err(_)` — the bytes are not a frame; the connection is unsalvageable
///   (framing is lost) and must be closed.
///
/// Header validation runs as soon as [`HEADER_LEN`] bytes are buffered —
/// in particular [`FrameError::Oversize`] fires *before* the payload is
/// awaited, so the per-frame memory bound is `limits.max_payload` and an
/// adversarial length prefix never drives an allocation.
pub fn decode_frame(
    buf: &[u8],
    limits: DecodeLimits,
) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        // Validate what we can of a short prefix so garbage fails fast
        // instead of stalling a read loop waiting for 20 bytes of noise.
        for (byte, expected) in buf.iter().zip(MAGIC.to_be_bytes()) {
            if *byte != expected {
                return Err(FrameError::BadMagic { got: partial_magic(buf) });
            }
        }
        return Ok(None);
    }
    let magic = read_u32(buf, 0).unwrap_or(0);
    if magic != MAGIC {
        return Err(FrameError::BadMagic { got: magic });
    }
    let version = *buf.get(4).unwrap_or(&0);
    if version != VERSION {
        return Err(FrameError::BadVersion { got: version });
    }
    let frame_type = *buf.get(5).unwrap_or(&0);
    if !(TYPE_QUERY..=TYPE_GOAWAY).contains(&frame_type) {
        return Err(FrameError::BadType { got: frame_type });
    }
    let reserved = read_u16(buf, 6).unwrap_or(0);
    if reserved != 0 {
        return Err(FrameError::ReservedNotZero { got: reserved });
    }
    let Some(request_id) = read_u64(buf, 8) else { return Ok(None) };
    let Some(payload_len) = read_u32(buf, 16) else { return Ok(None) };
    if payload_len > limits.max_payload {
        return Err(FrameError::Oversize { len: payload_len, max: limits.max_payload });
    }
    let total = HEADER_LEN.saturating_add(payload_len as usize);
    let Some(payload) = buf.get(HEADER_LEN..total) else { return Ok(None) };

    let frame = match frame_type {
        TYPE_QUERY => decode_query(request_id, payload, limits)?,
        TYPE_ANSWER => decode_answer(request_id, payload)?,
        TYPE_REJECT => {
            let (code, detail) = decode_status(payload)?;
            Frame::Reject(RejectFrame { request_id, code: RejectCode::from_u16(code)?, detail })
        }
        _ => {
            let (code, detail) = decode_status(payload)?;
            Frame::GoAway(GoAwayFrame { code: GoAwayCode::from_u16(code)?, detail })
        }
    };
    Ok(Some((frame, total)))
}

/// Best-effort magic reconstruction for short-prefix errors.
fn partial_magic(buf: &[u8]) -> u32 {
    let mut bytes = [0u8; 4];
    for (slot, b) in bytes.iter_mut().zip(buf) {
        *slot = *b;
    }
    u32::from_be_bytes(bytes)
}

fn decode_query(
    request_id: u64,
    payload: &[u8],
    limits: DecodeLimits,
) -> Result<Frame, FrameError> {
    let got = payload.len() as u32;
    if payload.len() < QUERY_FIXED_LEN {
        return Err(FrameError::LengthMismatch { expected: QUERY_FIXED_LEN as u32, got });
    }
    let deadline_raw = read_u32(payload, 0).unwrap_or(UNSET_MS);
    let staleness_raw = read_u32(payload, 4).unwrap_or(UNSET_MS);
    let slot = read_u16(payload, 8).unwrap_or(0);
    let count = u32::from(read_u16(payload, 10).unwrap_or(0));
    if count > limits.max_roads {
        return Err(FrameError::TooManyRoads { count, max: limits.max_roads });
    }
    let expected = (QUERY_FIXED_LEN as u32).saturating_add(count.saturating_mul(4));
    if got != expected {
        return Err(FrameError::LengthMismatch { expected, got });
    }
    // The length check above pins the payload to exactly `count` roads, so
    // iteration and allocation size both derive from the validated slice —
    // never from the wire count directly.
    let road_bytes = payload.get(QUERY_FIXED_LEN..).unwrap_or(&[]);
    let mut roads = Vec::with_capacity(road_bytes.len() / 4);
    for chunk in road_bytes.chunks_exact(4) {
        let Ok(bytes) = <[u8; 4]>::try_from(chunk) else {
            return Err(FrameError::LengthMismatch { expected, got });
        };
        roads.push(u32::from_be_bytes(bytes));
    }
    Ok(Frame::Query(QueryFrame {
        request_id,
        deadline_ms: budget_ms(deadline_raw),
        max_staleness_ms: budget_ms(staleness_raw),
        slot,
        roads,
    }))
}

fn decode_answer(request_id: u64, payload: &[u8]) -> Result<Frame, FrameError> {
    let got = payload.len() as u32;
    if payload.len() < ANSWER_FIXED_LEN {
        return Err(FrameError::LengthMismatch { expected: ANSWER_FIXED_LEN as u32, got });
    }
    let generation = read_u64(payload, 0).unwrap_or(0);
    let age_us = read_u64(payload, 8).unwrap_or(0);
    let wait_us = read_u64(payload, 16).unwrap_or(0);
    let slot = read_u16(payload, 24).unwrap_or(0);
    let hit_byte = *payload.get(26).unwrap_or(&0);
    let cache_hit = match hit_byte {
        0 => false,
        1 => true,
        other => return Err(FrameError::BadBool { got: other }),
    };
    let reserved = *payload.get(27).unwrap_or(&0);
    if reserved != 0 {
        return Err(FrameError::ReservedNotZero { got: u16::from(reserved) });
    }
    let count = read_u32(payload, 28).unwrap_or(0);
    let expected = (ANSWER_FIXED_LEN as u32).saturating_add(count.saturating_mul(12));
    if got != expected {
        return Err(FrameError::LengthMismatch { expected, got });
    }
    // As in `decode_query`: the length check pins the payload to exactly
    // `count` pairs, so sizing and iteration come from the validated
    // slice, not the wire count.
    let pair_bytes = payload.get(ANSWER_FIXED_LEN..).unwrap_or(&[]);
    let mut roads = Vec::with_capacity(pair_bytes.len() / 12);
    let mut speeds = Vec::with_capacity(pair_bytes.len() / 12);
    for chunk in pair_bytes.chunks_exact(12) {
        let (Some(road), Some(bits)) = (read_u32(chunk, 0), read_u64(chunk, 4)) else {
            return Err(FrameError::LengthMismatch { expected, got });
        };
        roads.push(road);
        speeds.push(f64::from_bits(bits));
    }
    Ok(Frame::Answer(AnswerFrame {
        request_id,
        generation,
        age_us,
        wait_us,
        slot,
        cache_hit,
        roads,
        speeds,
    }))
}

/// Shared `[code: u16][detail_len: u16][detail]` layout of reject/goaway.
fn decode_status(payload: &[u8]) -> Result<(u16, String), FrameError> {
    let got = payload.len() as u32;
    if payload.len() < 4 {
        return Err(FrameError::LengthMismatch { expected: 4, got });
    }
    let code = read_u16(payload, 0).unwrap_or(0);
    let detail_len = u32::from(read_u16(payload, 2).unwrap_or(0));
    let expected = 4u32.saturating_add(detail_len);
    if got != expected {
        return Err(FrameError::LengthMismatch { expected, got });
    }
    // The length check pins the payload to exactly `detail_len` trailing
    // bytes, so the detail is simply the validated remainder.
    let detail_bytes = payload.get(4..).unwrap_or(&[]);
    let mut detail_vec = Vec::with_capacity(detail_bytes.len());
    detail_vec.extend_from_slice(detail_bytes);
    let detail = String::from_utf8(detail_vec).map_err(|_| FrameError::BadUtf8)?;
    Ok((code, detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> DecodeLimits {
        DecodeLimits::for_max_roads(64)
    }

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire);
        let (decoded, consumed) =
            decode_frame(&wire, limits()).expect("valid frame").expect("complete frame");
        assert_eq!(consumed, wire.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frame_types_roundtrip() {
        roundtrip(Frame::Query(QueryFrame {
            request_id: 7,
            deadline_ms: Some(250),
            max_staleness_ms: None,
            slot: 102,
            roads: vec![0, 3, 9, 4_000_000_000],
        }));
        roundtrip(Frame::Answer(AnswerFrame {
            request_id: u64::MAX,
            generation: 3,
            age_us: 1234,
            wait_us: 567,
            slot: 287,
            cache_hit: true,
            roads: vec![1, 2],
            speeds: vec![48.25, 0.1],
        }));
        roundtrip(Frame::Reject(RejectFrame {
            request_id: 9,
            code: RejectCode::DeadlineOutOfBounds,
            detail: "deadline 400000 ms exceeds bound".into(),
        }));
        roundtrip(Frame::GoAway(GoAwayFrame {
            code: GoAwayCode::ShuttingDown,
            detail: String::new(),
        }));
    }

    #[test]
    fn speeds_roundtrip_bit_identically() {
        // PartialEq can't see this (NaN != NaN); the bits can.
        let payload = f64::from_bits(0x7ff8_0000_0000_0001);
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Answer(AnswerFrame {
                request_id: 1,
                generation: 1,
                age_us: 0,
                wait_us: 0,
                slot: 0,
                cache_hit: false,
                roads: vec![9],
                speeds: vec![payload],
            }),
            &mut wire,
        );
        let (frame, _) = decode_frame(&wire, limits()).expect("valid").expect("complete");
        let Frame::Answer(a) = frame else { panic!("answer expected") };
        let bits: Vec<u64> = a.speeds.iter().map(|s| s.to_bits()).collect();
        assert_eq!(bits, vec![payload.to_bits()]);
    }

    #[test]
    fn oversize_rejects_from_header_alone() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Query(QueryFrame {
                request_id: 1,
                deadline_ms: None,
                max_staleness_ms: None,
                slot: 0,
                roads: vec![0],
            }),
            &mut wire,
        );
        // Forge a 1 GiB length prefix; hand the decoder ONLY the header.
        wire.truncate(HEADER_LEN);
        wire[16..20].copy_from_slice(&(1u32 << 30).to_be_bytes());
        let err = decode_frame(&wire, limits()).expect_err("must reject");
        assert!(matches!(err, FrameError::Oversize { len, .. } if len == 1 << 30));
    }

    #[test]
    fn incremental_prefixes_ask_for_more() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Query(QueryFrame {
                request_id: 5,
                deadline_ms: Some(10),
                max_staleness_ms: Some(20),
                slot: 9,
                roads: vec![1, 2, 3],
            }),
            &mut wire,
        );
        for cut in 0..wire.len() {
            let out = decode_frame(&wire[..cut], limits()).expect("prefix of a valid frame");
            assert!(out.is_none(), "prefix of {cut} bytes must not decode");
        }
        assert!(decode_frame(&wire, limits()).expect("valid").is_some());
    }

    #[test]
    fn garbage_magic_fails_before_the_full_header() {
        let err = decode_frame(b"GET / HTTP/1.1\r\n", limits()).expect_err("not a frame");
        assert!(matches!(err, FrameError::BadMagic { .. }));
        // Even a single wrong byte is enough.
        let err = decode_frame(&[0x00], limits()).expect_err("not a frame");
        assert!(matches!(err, FrameError::BadMagic { .. }));
    }

    #[test]
    fn query_length_must_match_road_count() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Query(QueryFrame {
                request_id: 2,
                deadline_ms: None,
                max_staleness_ms: None,
                slot: 1,
                roads: vec![4, 5],
            }),
            &mut wire,
        );
        // Claim 3 roads but carry 2.
        let off = HEADER_LEN + 10;
        wire[off..off + 2].copy_from_slice(&3u16.to_be_bytes());
        let err = decode_frame(&wire, limits()).expect_err("must reject");
        assert!(matches!(err, FrameError::LengthMismatch { .. }));
    }

    #[test]
    fn road_count_cap_is_enforced() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Query(QueryFrame {
                request_id: 2,
                deadline_ms: None,
                max_staleness_ms: None,
                slot: 1,
                roads: (0..65).collect(),
            }),
            &mut wire,
        );
        let err = decode_frame(&wire, limits()).expect_err("must reject");
        assert!(matches!(err, FrameError::TooManyRoads { count: 65, max: 64 }));
    }

    #[test]
    fn unset_budgets_are_none() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Query(QueryFrame {
                request_id: 11,
                deadline_ms: None,
                max_staleness_ms: None,
                slot: 3,
                roads: vec![7],
            }),
            &mut wire,
        );
        let (frame, _) = decode_frame(&wire, limits()).expect("valid").expect("complete");
        let Frame::Query(q) = frame else { panic!("query expected") };
        assert_eq!(q.deadline_ms, None);
        assert_eq!(q.max_staleness_ms, None);
    }

    #[test]
    fn bad_codes_and_bools_are_typed_errors() {
        let mut wire = Vec::new();
        encode_frame(
            &Frame::Reject(RejectFrame {
                request_id: 1,
                code: RejectCode::QueueFull,
                detail: "x".into(),
            }),
            &mut wire,
        );
        wire[HEADER_LEN..HEADER_LEN + 2].copy_from_slice(&999u16.to_be_bytes());
        assert!(matches!(
            decode_frame(&wire, limits()).expect_err("bad code"),
            FrameError::BadCode { got: 999 }
        ));

        let mut wire = Vec::new();
        encode_frame(
            &Frame::Answer(AnswerFrame {
                request_id: 1,
                generation: 1,
                age_us: 0,
                wait_us: 0,
                slot: 0,
                cache_hit: false,
                roads: vec![],
                speeds: vec![],
            }),
            &mut wire,
        );
        wire[HEADER_LEN + 26] = 7;
        assert!(matches!(
            decode_frame(&wire, limits()).expect_err("bad bool"),
            FrameError::BadBool { got: 7 }
        ));
    }

    #[test]
    fn back_to_back_frames_consume_exactly_one() {
        let mut wire = Vec::new();
        let q = Frame::Query(QueryFrame {
            request_id: 1,
            deadline_ms: None,
            max_staleness_ms: None,
            slot: 0,
            roads: vec![1],
        });
        encode_frame(&q, &mut wire);
        let first_len = wire.len();
        encode_frame(&q, &mut wire);
        let (_, consumed) = decode_frame(&wire, limits()).expect("valid").expect("complete");
        assert_eq!(consumed, first_len);
        let rest = &wire[consumed..];
        assert!(decode_frame(rest, limits()).expect("valid").is_some());
    }
}
