//! Slot-rollover prewarm: build the next slot's world before the clock
//! reaches it.
//!
//! The serving layer keys everything by [`SlotOfDay`]: correlation
//! tables, the answer cache, the coherence generations. At a slot
//! boundary every one of those is cold for the new slot, so the first
//! post-boundary query pays `|R|` Dijkstras plus a full shared round —
//! a latency cliff that recurs every 5 minutes, forever. The prewarm
//! loop runs on its own pool thread, watches a [`SlotClock`], and warms
//! the *next* slot (Γ build + one cache-filling round) inside the
//! configured lead window, so by the time real traffic rolls over the
//! slot is indistinguishable from a warm one.

use crate::config::PrewarmConfig;
use crowd_rtse_core::CrowdRtse;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::RoadId;
use rtse_serve::{ServeRequest, ServerHandle};
use rtse_sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How often the prewarm loop re-checks the clock and the shutdown flag.
const POLL: Duration = Duration::from_millis(5);

/// Maps wall-clock time onto slots of the day.
///
/// Benchmarks compress `slot_len` to seconds so one run crosses many
/// boundaries; production uses the paper's 5 minutes. The mapping is
/// pure arithmetic over a fixed epoch, so every shard and the prewarm
/// loop agree on the current slot without coordination.
#[derive(Debug, Clone, Copy)]
pub struct SlotClock {
    epoch: Instant,
    slot_len: Duration,
    base: SlotOfDay,
}

impl SlotClock {
    /// A clock that reads `base_slot` at `epoch` and advances one slot
    /// every `slot_len`.
    pub fn new(epoch: Instant, prewarm: &PrewarmConfig) -> Self {
        Self { epoch, slot_len: prewarm.slot_len, base: prewarm.base_slot }
    }

    fn ticks(&self, now: Instant) -> u128 {
        let nanos = self.slot_len.as_nanos().max(1);
        now.saturating_duration_since(self.epoch).as_nanos() / nanos
    }

    /// The slot the clock reads at `now`.
    pub fn slot_at(&self, now: Instant) -> SlotOfDay {
        let tick = self.ticks(now) % (SLOTS_PER_DAY as u128);
        let index = (u128::from(self.base.0) + tick) % (SLOTS_PER_DAY as u128);
        SlotOfDay(index as u16)
    }

    /// The slot the clock will read after the next boundary.
    pub fn next_slot(&self, now: Instant) -> SlotOfDay {
        let current = self.slot_at(now);
        SlotOfDay((current.0 + 1) % (SLOTS_PER_DAY as u16))
    }

    /// Time remaining until the next slot boundary.
    pub fn until_next(&self, now: Instant) -> Duration {
        let nanos = self.slot_len.as_nanos().max(1);
        let into_slot = now.saturating_duration_since(self.epoch).as_nanos() % nanos;
        let remaining = nanos - into_slot;
        // A u128 nanosecond count within one slot always fits u64.
        Duration::from_nanos(u64::try_from(remaining).unwrap_or(u64::MAX))
    }
}

/// The prewarm loop: once per boundary, inside the lead window, build
/// the next slot's correlation table and run one cache-filling round for
/// it. Exits when `shutdown` is set.
///
/// The cache-filling query goes through the ordinary serving queue, so
/// it shares a round with (rather than races) any early client query for
/// the upcoming slot, and it is dropped like any other request if the
/// server is draining.
pub(crate) fn prewarm_loop(
    engine: &CrowdRtse<'_>,
    handle: &ServerHandle<'_>,
    clock: &SlotClock,
    lead: Duration,
    shutdown: &AtomicBool,
) {
    let mut warmed: Option<SlotOfDay> = None;
    while !shutdown.load(Ordering::Acquire) {
        let now = Instant::now();
        let next = clock.next_slot(now);
        if clock.until_next(now) <= lead && warmed != Some(next) {
            // Γ first: the table build is the expensive half and is
            // per-slot get-or-init, so a concurrent client query for the
            // same slot coalesces instead of duplicating the Dijkstras.
            let _ = engine.offline().corr_table(engine.graph(), next);
            let warm = ServeRequest::new(vec![RoadId(0)], next);
            let _ = handle.query(warm);
            warmed = Some(next);
        }
        std::thread::sleep(POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(slot_len_ms: u64, base: u16) -> (SlotClock, Instant) {
        let epoch = Instant::now();
        let prewarm = PrewarmConfig {
            slot_len: Duration::from_millis(slot_len_ms),
            lead: Duration::from_millis(1),
            base_slot: SlotOfDay(base),
        };
        (SlotClock::new(epoch, &prewarm), epoch)
    }

    #[test]
    fn clock_advances_one_slot_per_slot_len() {
        let (clock, epoch) = clock(100, 5);
        assert_eq!(clock.slot_at(epoch), SlotOfDay(5));
        assert_eq!(clock.slot_at(epoch + Duration::from_millis(99)), SlotOfDay(5));
        assert_eq!(clock.slot_at(epoch + Duration::from_millis(100)), SlotOfDay(6));
        assert_eq!(clock.slot_at(epoch + Duration::from_millis(350)), SlotOfDay(8));
    }

    #[test]
    fn clock_wraps_at_day_end() {
        let (clock, epoch) = clock(100, (SLOTS_PER_DAY - 1) as u16);
        assert_eq!(clock.next_slot(epoch), SlotOfDay(0));
        assert_eq!(clock.slot_at(epoch + Duration::from_millis(100)), SlotOfDay(0));
    }

    #[test]
    fn until_next_counts_down_within_the_slot() {
        let (clock, epoch) = clock(100, 0);
        let at_30 = clock.until_next(epoch + Duration::from_millis(30));
        assert!(at_30 <= Duration::from_millis(70), "{at_30:?}");
        assert!(at_30 > Duration::from_millis(50), "{at_30:?}");
    }

    #[test]
    fn before_epoch_reads_base_slot() {
        let (clock, epoch) = clock(100, 7);
        // saturating_duration_since clamps pre-epoch reads to the epoch.
        assert_eq!(clock.slot_at(epoch - Duration::from_secs(5)), SlotOfDay(7));
    }
}
