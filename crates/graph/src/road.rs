//! Road identifiers and metadata.

use std::fmt;

/// Index of a road (a graph vertex).
///
/// A newtype over `u32`: traffic networks of interest are far below 2^32
/// roads and the narrower index halves the footprint of adjacency arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoadId(pub u32);

impl RoadId {
    /// The id as a `usize` for direct indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for RoadId {
    fn from(v: u32) -> Self {
        RoadId(v)
    }
}

impl From<usize> for RoadId {
    fn from(v: usize) -> Self {
        RoadId(u32::try_from(v).expect("road index exceeds u32"))
    }
}

impl fmt::Display for RoadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Functional class of a road.
///
/// The paper notes that highways see stable speeds (cheap to crowdsource)
/// while secondary roads fluctuate (expensive); the synthetic generator and
/// the cost model condition on this class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoadClass {
    /// Grade-separated, high free-flow speed, very stable.
    Highway,
    /// Major urban artery with pronounced rush-hour dips.
    Arterial,
    /// Collector/secondary road with volatile speeds.
    #[default]
    Secondary,
    /// Local street: low speed, moderate volatility.
    Local,
}

impl RoadClass {
    /// Typical free-flow speed in km/h for the class.
    pub fn free_flow_speed(self) -> f64 {
        match self {
            RoadClass::Highway => 90.0,
            RoadClass::Arterial => 60.0,
            RoadClass::Secondary => 45.0,
            RoadClass::Local => 30.0,
        }
    }

    /// Relative speed volatility (scales the generator's noise terms).
    pub fn volatility(self) -> f64 {
        match self {
            RoadClass::Highway => 0.3,
            RoadClass::Arterial => 0.8,
            RoadClass::Secondary => 1.2,
            RoadClass::Local => 1.0,
        }
    }

    /// All classes, for enumeration in generators and tests.
    pub const ALL: [RoadClass; 4] =
        [RoadClass::Highway, RoadClass::Arterial, RoadClass::Secondary, RoadClass::Local];

    /// Typical segment length in meters for the class (generators jitter
    /// around this).
    pub fn typical_length_m(self) -> f64 {
        match self {
            RoadClass::Highway => 900.0,
            RoadClass::Arterial => 450.0,
            RoadClass::Secondary => 250.0,
            RoadClass::Local => 140.0,
        }
    }
}

/// Static metadata for one road segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Road {
    /// The road's vertex id.
    pub id: RoadId,
    /// Functional class.
    pub class: RoadClass,
    /// Segment length in meters (used by examples for travel-time).
    pub length_m: f64,
    /// Planar position of the segment midpoint (synthetic coordinates);
    /// generators use it for geometric neighbor search, examples for display.
    pub position: (f64, f64),
}

impl Road {
    /// Creates a road with the given id and class at a position, with a
    /// placeholder 200 m length (builders usually override it with
    /// [`RoadClass::typical_length_m`]).
    pub fn new(id: RoadId, class: RoadClass, position: (f64, f64)) -> Self {
        Self { id, class, length_m: 200.0, position }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_id_round_trip() {
        let id = RoadId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(RoadId::from(42u32), id);
        assert_eq!(id.to_string(), "r42");
    }

    #[test]
    fn class_speeds_ordered() {
        assert!(RoadClass::Highway.free_flow_speed() > RoadClass::Arterial.free_flow_speed());
        assert!(RoadClass::Arterial.free_flow_speed() > RoadClass::Local.free_flow_speed());
    }

    #[test]
    fn highway_least_volatile() {
        for c in RoadClass::ALL {
            assert!(RoadClass::Highway.volatility() <= c.volatility());
        }
    }
}
