//! Deterministic synthetic road networks.
//!
//! The paper evaluates on the Hong Kong network (607 monitored roads). That
//! feed is not available offline, so [`hong_kong_like`] builds a synthetic
//! network with the same scale and a realistic mix of structure: a highway
//! backbone, an arterial grid, and local streets attached at the fringe.
//! Smaller/simpler generators ([`grid`], [`path`], [`random_geometric`])
//! serve tests and scalability sweeps.
//!
//! All generators are seeded and fully deterministic.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::road::{RoadClass, RoadId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A simple path of `n` roads: `0 - 1 - ... - n-1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    for i in 1..n {
        b.add_edge(RoadId::from(i - 1), RoadId::from(i));
    }
    b.build()
}

/// A `rows x cols` 4-connected lattice (arterial class).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for r in 0..rows {
        for c in 0..cols {
            b.add_road(RoadClass::Arterial, (c as f64, r as f64));
        }
    }
    let id = |r: usize, c: usize| RoadId::from(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Random geometric graph: `n` roads uniform in the unit square, connected
/// when within `radius`; extra edges are added between components so the
/// result is always connected.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut pos = Vec::with_capacity(n);
    for _ in 0..n {
        let p = (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        pos.push(p);
        b.add_road(RoadClass::Secondary, p);
    }
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pos[i].0 - pos[j].0;
            let dy = pos[i].1 - pos[j].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(RoadId::from(i), RoadId::from(j));
            }
        }
    }
    connect_components(b, &pos)
}

/// Joins components by adding an edge between the geometrically closest
/// cross-component pair until connected.
fn connect_components(builder: GraphBuilder, pos: &[(f64, f64)]) -> Graph {
    let mut builder = builder;
    loop {
        let g = builder.clone().build();
        let (labels, count) = crate::components::connected_components(&g);
        if count <= 1 {
            return g;
        }
        // Closest pair between component 0 and any other component.
        let mut best = (f64::INFINITY, 0usize, 0usize);
        for i in 0..pos.len() {
            if labels[i] != 0 {
                continue;
            }
            for j in 0..pos.len() {
                if labels[j] == 0 {
                    continue;
                }
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let d = dx * dx + dy * dy;
                if d < best.0 {
                    best = (d, i, j);
                }
            }
        }
        builder.add_edge(RoadId::from(best.1), RoadId::from(best.2));
    }
}

/// A synthetic network shaped like the paper's Hong Kong test bed.
///
/// Produces exactly `n` roads (the paper uses 607):
/// * ~8% highways forming long chains (a backbone loop with spurs);
/// * ~45% arterials in an irregular grid stitched to the backbone;
/// * the rest secondary/local streets attached preferentially near
///   arterials.
///
/// Average degree lands near 3 (sparse, like a real road adjacency graph),
/// and the network is always connected.
pub fn hong_kong_like(n: usize, seed: u64) -> Graph {
    assert!(n >= 16, "hong_kong_like needs at least 16 roads");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut pos: Vec<(f64, f64)> = Vec::with_capacity(n);

    // 1. Highway backbone: a ring of h roads around the city.
    let h = (n / 12).max(6);
    for i in 0..h {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / h as f64;
        let p = (0.5 + 0.42 * angle.cos(), 0.5 + 0.42 * angle.sin());
        pos.push(p);
        b.add_road(RoadClass::Highway, p);
    }
    for i in 0..h {
        b.add_edge(RoadId::from(i), RoadId::from((i + 1) % h));
    }

    // 2. Arterial grid inside the ring.
    let a = (n * 45 / 100).max(4);
    let side = (a as f64).sqrt().ceil() as usize;
    let mut arterial_ids = Vec::with_capacity(a);
    for k in 0..a {
        let gr = k / side;
        let gc = k % side;
        let jitter_x = rng.random_range(-0.02..0.02);
        let jitter_y = rng.random_range(-0.02..0.02);
        let p = (
            0.2 + 0.6 * gc as f64 / side.max(1) as f64 + jitter_x,
            0.2 + 0.6 * gr as f64 / side.max(1) as f64 + jitter_y,
        );
        pos.push(p);
        arterial_ids.push(b.add_road(RoadClass::Arterial, p));
    }
    for k in 0..a {
        let gr = k / side;
        let gc = k % side;
        if gc + 1 < side && k + 1 < a {
            b.add_edge(arterial_ids[k], arterial_ids[k + 1]);
        }
        if gr + 1 < side.div_ceil(1) && k + side < a {
            b.add_edge(arterial_ids[k], arterial_ids[k + side]);
        }
    }
    // Stitch arterial grid corners to the highway ring.
    for corner in [0, side - 1, a - 1, a.saturating_sub(side)] {
        if corner < a {
            let ramp = RoadId::from(rng.random_range(0..h));
            b.add_edge(arterial_ids[corner], ramp);
        }
    }

    // 3. Secondary/local fill attached near random existing roads.
    while b.num_roads() < n {
        let host = RoadId::from(rng.random_range(0..b.num_roads()));
        let hp = pos[host.index()];
        let p = (
            (hp.0 + rng.random_range(-0.05..0.05)).clamp(0.0, 1.0),
            (hp.1 + rng.random_range(-0.05..0.05)).clamp(0.0, 1.0),
        );
        let class =
            if rng.random_range(0.0..1.0) < 0.6 { RoadClass::Secondary } else { RoadClass::Local };
        pos.push(p);
        let id = b.add_road(class, p);
        b.add_edge(id, host);
        // Occasional second attachment creates loops like a real street
        // network.
        if rng.random_range(0.0..1.0) < 0.3 && b.num_roads() > 2 {
            let other = RoadId::from(rng.random_range(0..b.num_roads() - 1));
            if other != id {
                b.add_edge(id, other);
            }
        }
    }

    connect_components(b, &pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_roads(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(RoadId(0)), 1);
        assert_eq!(g.degree(RoadId(2)), 2);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_roads(), 12);
        // Edges: 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(g.num_edges(), 17);
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(RoadId(0)), 2);
        assert_eq!(g.degree(RoadId(5)), 4);
    }

    #[test]
    fn random_geometric_connected_and_deterministic() {
        let g1 = random_geometric(50, 0.2, 7);
        let g2 = random_geometric(50, 0.2, 7);
        assert_eq!(g1.num_roads(), 50);
        assert_eq!(g1.num_edges(), g2.num_edges());
        let (_, count) = connected_components(&g1);
        assert_eq!(count, 1);
    }

    #[test]
    fn hong_kong_like_matches_paper_scale() {
        let g = hong_kong_like(607, 42);
        assert_eq!(g.num_roads(), 607);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1, "network must be connected");
        // Sparse like a real road network: average degree between 2 and 6.
        let avg = 2.0 * g.num_edges() as f64 / g.num_roads() as f64;
        assert!((2.0..6.0).contains(&avg), "avg degree {avg}");
        // All four road classes occur.
        for class in RoadClass::ALL {
            assert!(g.roads().iter().any(|r| r.class == class), "missing {class:?}");
        }
    }

    #[test]
    fn hong_kong_like_deterministic_per_seed() {
        let a = hong_kong_like(100, 1);
        let b = hong_kong_like(100, 1);
        assert_eq!(a.edges(), b.edges());
        let c = hong_kong_like(100, 2);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn small_networks_supported() {
        let g = hong_kong_like(16, 3);
        assert_eq!(g.num_roads(), 16);
    }
}

/// Watts–Strogatz small-world network: a ring lattice with `k` nearest
/// neighbors per side, each edge rewired with probability `beta`.
///
/// Used by the topology-robustness experiment to stress CrowdRTSE on a
/// graph with long-range shortcuts (unlike a road network).
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(n > 2 * k, "watts_strogatz needs n > 2k");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut pos = Vec::with_capacity(n);
    for i in 0..n {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        let p = (0.5 + 0.45 * angle.cos(), 0.5 + 0.45 * angle.sin());
        pos.push(p);
        b.add_road(RoadClass::Secondary, p);
    }
    for i in 0..n {
        for j in 1..=k {
            let neighbor = (i + j) % n;
            if rng.random_range(0.0..1.0) < beta {
                // Rewire to a uniformly random non-self target (duplicate
                // edges are deduplicated by the builder).
                let target = rng.random_range(0..n);
                if target != i {
                    b.add_edge(RoadId::from(i), RoadId::from(target));
                    continue;
                }
            }
            b.add_edge(RoadId::from(i), RoadId::from(neighbor));
        }
    }
    connect_components(b, &pos)
}

/// Barabási–Albert preferential attachment: each new road attaches to `m`
/// existing roads chosen proportionally to degree.
///
/// Produces hub-dominated topologies (again unlike road networks) for the
/// robustness sweep.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m + 1, "barabasi_albert needs n > m + 1 and m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut pos = Vec::with_capacity(n);
    // Seed clique of m + 1 roads.
    for i in 0..=m {
        let p = (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        pos.push(p);
        b.add_road(RoadClass::Arterial, p);
        for j in 0..i {
            b.add_edge(RoadId::from(i), RoadId::from(j));
        }
    }
    // Degree-weighted endpoint pool: each edge contributes both endpoints.
    let mut pool: Vec<u32> = Vec::new();
    for i in 0..=m {
        for j in 0..i {
            pool.push(i as u32);
            pool.push(j as u32);
        }
    }
    while b.num_roads() < n {
        let p = (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        pos.push(p);
        let new = b.add_road(RoadClass::Secondary, p);
        let mut attached = Vec::with_capacity(m);
        let mut guard = 0;
        while attached.len() < m && guard < 50 * m {
            guard += 1;
            let pick = pool[rng.random_range(0..pool.len())];
            if pick != new.0 && !attached.contains(&pick) {
                attached.push(pick);
            }
        }
        for &t in &attached {
            b.add_edge(new, RoadId(t));
            pool.push(new.0);
            pool.push(t);
        }
    }
    connect_components(b, &pos)
}

#[cfg(test)]
mod extra_generator_tests {
    use super::*;
    use crate::components::connected_components;
    use crate::metrics::{average_degree, clustering_coefficient, degree_histogram};

    #[test]
    fn watts_strogatz_connected_and_sized() {
        let g = watts_strogatz(60, 2, 0.2, 4);
        assert_eq!(g.num_roads(), 60);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
        // Ring lattice with k = 2 has ~2k average degree.
        let avg = average_degree(&g);
        assert!((3.0..5.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn watts_strogatz_zero_beta_is_regular_ring() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        let hist = degree_histogram(&g);
        // Every vertex has exactly degree 4.
        assert_eq!(hist.iter().position(|&c| c == 20), Some(4));
        // Ring lattices are highly clustered.
        assert!(clustering_coefficient(&g) > 0.4);
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let g = barabasi_albert(150, 2, 9);
        assert_eq!(g.num_roads(), 150);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
        let max_deg = g.road_ids().map(|r| g.degree(r)).max().unwrap();
        assert!(max_deg >= 10, "hub degree {max_deg} too small for BA");
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(watts_strogatz(30, 2, 0.3, 5).edges(), watts_strogatz(30, 2, 0.3, 5).edges());
        assert_eq!(barabasi_albert(40, 2, 5).edges(), barabasi_albert(40, 2, 5).edges());
    }
}
