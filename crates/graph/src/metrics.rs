//! Structural metrics of a road network.
//!
//! Used by DESIGN-level sanity checks (is the synthetic network road-like?)
//! and the topology-robustness experiment.

use crate::bfs::hop_distances;
use crate::csr::Graph;
use crate::road::RoadId;

/// Average vertex degree (`2|E| / |R|`); 0 for an empty graph.
pub fn average_degree(graph: &Graph) -> f64 {
    if graph.num_roads() == 0 {
        return 0.0;
    }
    2.0 * graph.num_edges() as f64 / graph.num_roads() as f64
}

/// Degree histogram: `hist[d]` = number of roads with degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max_deg = graph.road_ids().map(|r| graph.degree(r)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for r in graph.road_ids() {
        hist[graph.degree(r)] += 1;
    }
    hist
}

/// Exact eccentricity of one road (max hop distance to any reachable
/// road).
pub fn eccentricity(graph: &Graph, r: RoadId) -> usize {
    hop_distances(graph, &[r]).into_iter().filter(|&d| d != usize::MAX).max().unwrap_or(0)
}

/// Estimated diameter: the max eccentricity over `samples` deterministic
/// sample roads plus a double-sweep refinement (lower bound on the true
/// diameter, exact on trees and usually exact on road-like graphs).
pub fn diameter_estimate(graph: &Graph, samples: usize) -> usize {
    if graph.num_roads() == 0 {
        return 0;
    }
    let n = graph.num_roads();
    let mut best = 0usize;
    let step = (n / samples.max(1)).max(1);
    for start in (0..n).step_by(step) {
        // Double sweep: BFS to the farthest vertex, then BFS again from it.
        let d1 = hop_distances(graph, &[RoadId::from(start)]);
        let (far, dist) = d1
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != usize::MAX)
            .max_by_key(|(_, &d)| d)
            .map(|(i, &d)| (i, d))
            .unwrap_or((start, 0));
        best = best.max(dist);
        best = best.max(eccentricity(graph, RoadId::from(far)));
    }
    best
}

/// Global clustering coefficient: `3 × triangles / connected triples`.
/// 0 when the graph has no triples.
pub fn clustering_coefficient(graph: &Graph) -> f64 {
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for r in graph.road_ids() {
        let d = graph.degree(r);
        triples += d * d.saturating_sub(1) / 2;
        let nbrs: Vec<RoadId> = graph.neighbors(r).iter().map(|&(n, _)| n).collect();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if graph.are_adjacent(nbrs[i], nbrs[j]) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times total.
        triangles as f64 / triples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{grid, hong_kong_like, path};
    use crate::road::RoadClass;

    #[test]
    fn average_degree_hand_values() {
        assert_eq!(average_degree(&path(5)), 2.0 * 4.0 / 5.0);
        assert_eq!(average_degree(&GraphBuilder::new().build()), 0.0);
    }

    #[test]
    fn degree_histogram_path() {
        let h = degree_histogram(&path(5));
        assert_eq!(h, vec![0, 2, 3]); // two endpoints, three interior
    }

    #[test]
    fn diameter_of_path_exact() {
        assert_eq!(diameter_estimate(&path(10), 4), 9);
        assert_eq!(eccentricity(&path(10), crate::RoadId(0)), 9);
        assert_eq!(eccentricity(&path(10), crate::RoadId(5)), 5);
    }

    #[test]
    fn diameter_of_grid() {
        // 3x4 grid diameter = (3-1)+(4-1) = 5.
        assert_eq!(diameter_estimate(&grid(3, 4), 6), 5);
    }

    #[test]
    fn clustering_triangle_vs_path() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_road(RoadClass::Local, (i as f64, 0.0));
        }
        b.add_edge(crate::RoadId(0), crate::RoadId(1));
        b.add_edge(crate::RoadId(1), crate::RoadId(2));
        b.add_edge(crate::RoadId(0), crate::RoadId(2));
        let triangle = b.build();
        assert!((clustering_coefficient(&triangle) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&path(4)), 0.0);
    }

    #[test]
    fn hong_kong_like_is_road_shaped() {
        let g = hong_kong_like(300, 5);
        let avg = average_degree(&g);
        assert!((2.0..6.0).contains(&avg));
        // Real road adjacency graphs have low but nonzero clustering and
        // large diameter relative to size.
        let dia = diameter_estimate(&g, 8);
        assert!(dia >= 8, "diameter {dia} too small for a road network");
    }
}
