//! Immutable CSR (compressed sparse row) undirected graph.

use crate::road::{Road, RoadId};

/// Index of an undirected edge (a road adjacency).
///
/// Each physical adjacency has exactly one `EdgeId` even though it appears
/// in both endpoints' adjacency lists; per-edge model parameters (e.g. the
/// RTF correlation coefficients `ρ_ij^t`) are stored in arrays indexed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize` for direct indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An immutable undirected graph over roads, stored in CSR form.
///
/// Built once via [`crate::GraphBuilder`]; all traversals are allocation-free
/// iterator walks over two flat arrays. Self-loops and parallel edges are
/// rejected at build time.
#[derive(Debug, Clone)]
pub struct Graph {
    roads: Vec<Road>,
    /// CSR offsets: adjacency of road `i` is `adj[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Flattened adjacency entries `(neighbor, edge)`.
    adj: Vec<(RoadId, EdgeId)>,
    /// Endpoint pairs per undirected edge, with `endpoints[e].0 < endpoints[e].1`.
    endpoints: Vec<(RoadId, RoadId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        roads: Vec<Road>,
        offsets: Vec<u32>,
        adj: Vec<(RoadId, EdgeId)>,
        endpoints: Vec<(RoadId, RoadId)>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), roads.len() + 1);
        debug_assert_eq!(adj.len(), 2 * endpoints.len());
        Self { roads, offsets, adj, endpoints }
    }

    /// Number of roads (vertices), `|R|`.
    #[inline]
    pub fn num_roads(&self) -> usize {
        self.roads.len()
    }

    /// Number of undirected adjacencies (edges), `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Metadata for one road.
    #[inline]
    pub fn road(&self, id: RoadId) -> &Road {
        &self.roads[id.index()]
    }

    /// All road metadata, indexed by [`RoadId`].
    #[inline]
    pub fn roads(&self) -> &[Road] {
        &self.roads
    }

    /// Iterator over all road ids.
    pub fn road_ids(&self) -> impl ExactSizeIterator<Item = RoadId> + '_ {
        (0..self.roads.len() as u32).map(RoadId)
    }

    /// Adjacent roads of `r` with the connecting edge ids — the paper's
    /// `n(r_i)`.
    #[inline]
    pub fn neighbors(&self, r: RoadId) -> &[(RoadId, EdgeId)] {
        let lo = self.offsets[r.index()] as usize;
        let hi = self.offsets[r.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of a road.
    #[inline]
    pub fn degree(&self, r: RoadId) -> usize {
        self.neighbors(r).len()
    }

    /// Endpoints `(a, b)` of an edge with `a < b`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (RoadId, RoadId) {
        self.endpoints[e.index()]
    }

    /// All edges as `(a, b)` endpoint pairs indexed by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[(RoadId, RoadId)] {
        &self.endpoints
    }

    /// Looks up the edge between two roads, if adjacent.
    pub fn edge_between(&self, a: RoadId, b: RoadId) -> Option<EdgeId> {
        // Scan the smaller adjacency list.
        let (probe, target) = if self.degree(a) <= self.degree(b) { (a, b) } else { (b, a) };
        self.neighbors(probe).iter().find(|(n, _)| *n == target).map(|(_, e)| *e)
    }

    /// True when `a` and `b` are adjacent.
    pub fn are_adjacent(&self, a: RoadId, b: RoadId) -> bool {
        self.edge_between(a, b).is_some()
    }

    /// Builds the induced subgraph on `keep` (ids are remapped to
    /// `0..keep.len()` in the order given). Returns the subgraph and the
    /// old-id per new-id mapping.
    ///
    /// Used by the Fig. 5 experiment, which trains RTF on nested
    /// sub-networks of 150–600 roads.
    ///
    /// # Panics
    /// Panics if `keep` contains duplicates.
    pub fn induced_subgraph(&self, keep: &[RoadId]) -> (Graph, Vec<RoadId>) {
        let mut new_id = vec![u32::MAX; self.num_roads()];
        for (new, old) in keep.iter().enumerate() {
            assert_eq!(new_id[old.index()], u32::MAX, "duplicate road in keep set");
            new_id[old.index()] = new as u32;
        }
        let mut builder = crate::GraphBuilder::new();
        for old in keep {
            let mut road = self.road(*old).clone();
            road.id = RoadId(new_id[old.index()]);
            builder.push_road(road);
        }
        for &(a, b) in &self.endpoints {
            let (na, nb) = (new_id[a.index()], new_id[b.index()]);
            if na != u32::MAX && nb != u32::MAX {
                builder.add_edge(RoadId(na), RoadId(nb));
            }
        }
        (builder.build(), keep.to_vec())
    }
}

impl rtse_check::Validate for Graph {
    /// CSR structural contract: offsets are monotone and consistent with
    /// the adjacency array, every adjacency row is strictly sorted by
    /// neighbor id (the builder establishes this), every entry is
    /// in-bounds, and each entry's edge id round-trips through
    /// [`Graph::edge_endpoints`].
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::ensure;
        let n = self.roads.len();
        ensure(self.offsets.len() == n + 1, "graph.offsets_len", || {
            format!("{} offsets for {n} roads", self.offsets.len())
        })?;
        ensure(self.offsets[0] == 0, "graph.offsets_start", || {
            format!("offsets[0] = {}", self.offsets[0])
        })?;
        ensure(self.offsets[n] as usize == self.adj.len(), "graph.offsets_end", || {
            format!("offsets[{n}] = {} but {} adjacency entries", self.offsets[n], self.adj.len())
        })?;
        ensure(self.adj.len() == 2 * self.endpoints.len(), "graph.adj_len", || {
            format!("{} adjacency entries for {} edges", self.adj.len(), self.endpoints.len())
        })?;
        for r in 0..n {
            ensure(self.offsets[r] <= self.offsets[r + 1], "graph.offsets_monotone", || {
                format!(
                    "offsets[{r}] = {} > offsets[{}] = {}",
                    self.offsets[r],
                    r + 1,
                    self.offsets[r + 1]
                )
            })?;
            let row = &self.adj[self.offsets[r] as usize..self.offsets[r + 1] as usize];
            for (k, &(nbr, e)) in row.iter().enumerate() {
                ensure(nbr.index() < n, "graph.neighbor_in_bounds", || {
                    format!("road {r} lists neighbor {nbr} but |R| = {n}")
                })?;
                ensure(nbr.index() != r, "graph.no_self_loop", || {
                    format!("road {r} lists itself as a neighbor")
                })?;
                ensure(e.index() < self.endpoints.len(), "graph.edge_in_bounds", || {
                    format!("road {r} lists edge {e:?} but |E| = {}", self.endpoints.len())
                })?;
                ensure(k == 0 || row[k - 1].0 < nbr, "graph.adjacency_sorted", || {
                    format!("road {r}: neighbors {} and {nbr} out of order", row[k - 1].0)
                })?;
                let (a, b) = self.endpoints[e.index()];
                let r_id = RoadId(r as u32);
                ensure(
                    (a, b) == (r_id.min(nbr), r_id.max(nbr)),
                    "graph.edge_endpoints_consistent",
                    || format!("road {r} ↔ {nbr} stored under edge {e:?} = ({a}, {b})"),
                )?;
            }
        }
        for (i, &(a, b)) in self.endpoints.iter().enumerate() {
            ensure(a < b && b.index() < n, "graph.endpoints_ordered", || {
                format!("edge {i} endpoints ({a}, {b}) with |R| = {n}")
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::road::RoadClass;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.push_road(Road::new(RoadId::from(i), RoadClass::Secondary, (i as f64, 0.0)));
        }
        for i in 0..n.saturating_sub(1) {
            b.add_edge(RoadId::from(i), RoadId::from(i + 1));
        }
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = path_graph(4);
        assert_eq!(g.num_roads(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(RoadId(0)), 1);
        assert_eq!(g.degree(RoadId(1)), 2);
    }

    #[test]
    fn neighbors_symmetric() {
        let g = path_graph(3);
        let n1: Vec<RoadId> = g.neighbors(RoadId(1)).iter().map(|(r, _)| *r).collect();
        assert!(n1.contains(&RoadId(0)) && n1.contains(&RoadId(2)));
        assert!(g.are_adjacent(RoadId(0), RoadId(1)));
        assert!(g.are_adjacent(RoadId(1), RoadId(0)));
        assert!(!g.are_adjacent(RoadId(0), RoadId(2)));
    }

    #[test]
    fn edge_between_shares_edge_id() {
        let g = path_graph(3);
        let e01 = g.edge_between(RoadId(0), RoadId(1)).unwrap();
        let e10 = g.edge_between(RoadId(1), RoadId(0)).unwrap();
        assert_eq!(e01, e10);
        let (a, b) = g.edge_endpoints(e01);
        assert!(a < b);
        assert_eq!((a, b), (RoadId(0), RoadId(1)));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = path_graph(5);
        let (sub, mapping) = g.induced_subgraph(&[RoadId(1), RoadId(2), RoadId(3)]);
        assert_eq!(sub.num_roads(), 3);
        assert_eq!(sub.num_edges(), 2); // 1-2 and 2-3 survive
        assert_eq!(mapping, vec![RoadId(1), RoadId(2), RoadId(3)]);
        assert!(sub.are_adjacent(RoadId(0), RoadId(1)));
        assert!(!sub.are_adjacent(RoadId(0), RoadId(2)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_roads(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
