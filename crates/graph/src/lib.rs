//! Traffic-network substrate for CrowdRTSE.
//!
//! The paper models a traffic network as an undirected graph `N(R, E)` where
//! each vertex is an atomic road segment and each edge is a physical
//! adjacency between roads (Section III-A). This crate provides that graph:
//!
//! * [`RoadId`] / [`Road`] — typed identifiers and per-road metadata;
//! * [`Graph`] — an immutable CSR (compressed sparse row) undirected graph
//!   with `f64` edge weights, built via [`GraphBuilder`];
//! * [`dijkstra`] — single-source shortest paths over arbitrary non-negative
//!   edge costs (used for the path-correlation table, Eqs. 8–10);
//! * [`bfs`] — multi-source BFS hop layering (the GSP update schedule,
//!   Alg. 5) plus plain traversal utilities;
//! * [`components`] — connected components (used by the gMission scenario
//!   builder, which needs a mutually connected sub-component);
//! * [`generators`] — deterministic synthetic road networks, including a
//!   "Hong-Kong-like" 607-road network matching the paper's test bed.

pub mod bfs;
pub mod builder;
pub mod components;
pub mod csr;
pub mod dijkstra;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod road;

pub use bfs::{bfs_layers, hop_distances};
pub use builder::GraphBuilder;
pub use components::{connected_components, largest_component};
pub use csr::{EdgeId, Graph};
pub use dijkstra::{dijkstra, dijkstra_with_paths, BoundedDijkstra, ShortestPaths};
pub use metrics::{average_degree, clustering_coefficient, degree_histogram, diameter_estimate};
pub use road::{Road, RoadClass, RoadId};
