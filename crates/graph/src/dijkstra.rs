//! Single-source shortest paths with non-negative per-edge costs.
//!
//! The paper computes the road–road correlation of non-adjacent roads as the
//! maximum cumulative product of edge correlations along any joining path
//! (Eq. 8), found "using Dijkstra's Algorithm" after transforming edge
//! weights (Eq. 9). The transformation lives in `rtse-rtf`; this module is
//! the general solver: costs are supplied by a closure over [`EdgeId`], so
//! the same code serves `-ln ρ` (max-product) and `1/ρ` (the paper's literal
//! reciprocal-sum) semantics.

use crate::csr::{EdgeId, Graph};
use crate::road::RoadId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: RoadId,
    /// Cost per road; `f64::INFINITY` for unreachable roads.
    dist: Vec<f64>,
    /// Predecessor per road (only populated by [`dijkstra_with_paths`]).
    prev: Option<Vec<Option<RoadId>>>,
}

impl ShortestPaths {
    /// The source road.
    pub fn source(&self) -> RoadId {
        self.source
    }

    /// Shortest-path cost to `r` (`INFINITY` when unreachable).
    #[inline]
    pub fn cost(&self, r: RoadId) -> f64 {
        self.dist[r.index()]
    }

    /// Borrow of the full cost array, indexed by road.
    pub fn costs(&self) -> &[f64] {
        &self.dist
    }

    /// True when `r` is reachable from the source.
    pub fn reachable(&self, r: RoadId) -> bool {
        self.dist[r.index()].is_finite()
    }

    /// Reconstructs the path `source -> r`, inclusive; `None` if
    /// unreachable or predecessors were not recorded.
    pub fn path_to(&self, r: RoadId) -> Option<Vec<RoadId>> {
        let prev = self.prev.as_ref()?;
        if !self.reachable(r) {
            return None;
        }
        let mut path = vec![r];
        let mut cur = r;
        while let Some(p) = prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        (path[0] == self.source).then_some(path)
    }
}

/// Max-heap entry ordered by smallest cost first.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    cost: f64,
    road: RoadId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour; `total_cmp` gives a total order
        // even though costs are never NaN (asserted on insert).
        other.cost.total_cmp(&self.cost).then_with(|| other.road.cmp(&self.road))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Rejects negative or NaN edge costs: always a `debug_assert!`, and a
/// fail-closed [`rtse_check::fail`] abort under the `validate` feature so a
/// NaN ρ from data cannot corrupt release-build distances silently.
#[inline]
fn guard_edge_cost(edge: EdgeId, w: f64) {
    debug_assert!(w >= 0.0 && !w.is_nan(), "negative or NaN edge cost");
    #[cfg(feature = "validate")]
    if !(w >= 0.0) {
        rtse_check::fail(&rtse_check::InvariantViolation::new(
            "dijkstra.edge_cost_nonnegative",
            format!("edge {edge:?} has cost {w}; Dijkstra requires finite non-negative costs"),
        ));
    }
    #[cfg(not(feature = "validate"))]
    let _ = (edge, w);
}

fn run(
    graph: &Graph,
    source: RoadId,
    mut edge_cost: impl FnMut(EdgeId) -> f64,
    record_paths: bool,
) -> ShortestPaths {
    let n = graph.num_roads();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = record_paths.then(|| vec![None; n]);
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry { cost: 0.0, road: source });

    while let Some(HeapEntry { cost, road }) = heap.pop() {
        if settled[road.index()] {
            continue;
        }
        settled[road.index()] = true;
        for &(nbr, edge) in graph.neighbors(road) {
            if settled[nbr.index()] {
                continue;
            }
            let w = edge_cost(edge);
            guard_edge_cost(edge, w);
            let next = cost + w;
            if next < dist[nbr.index()] {
                dist[nbr.index()] = next;
                if let Some(prev) = prev.as_mut() {
                    prev[nbr.index()] = Some(road);
                }
                heap.push(HeapEntry { cost: next, road: nbr });
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

/// Reusable early-exit Dijkstra for repeated single-source runs over one
/// graph size.
///
/// Built for the sparse Γ substrate: a correlation floor `f` translates to
/// the cost bound `-ln f` on the Eq. 9 transformed weights, and because
/// Dijkstra settles roads in nondecreasing cost order, every road left
/// unsettled when the next heap minimum exceeds the bound is guaranteed to
/// have `exp(-dist) < f`. Two properties matter to callers:
///
/// - **Bit-identity within the bound.** For every road settled at cost
///   `<= bound`, the reported cost is bit-identical to the unbounded
///   [`dijkstra`] result: relaxation skips only pushes with `next > bound`,
///   and any prefix of a within-bound shortest path has cost `<= bound`
///   (costs are non-negative), so no within-bound path is ever lost and the
///   same floating-point sums are produced in the same settle order.
/// - **Scratch reuse.** `dist`/`settled` are allocated once and reset per
///   run by walking only the roads the previous run touched, so a
///   per-source sweep over a 100k-road network costs O(touched) per row,
///   not O(n).
#[derive(Debug)]
pub struct BoundedDijkstra {
    dist: Vec<f64>,
    settled: Vec<bool>,
    touched: Vec<RoadId>,
    heap: BinaryHeap<HeapEntry>,
}

impl BoundedDijkstra {
    /// Scratch sized for graphs with `num_roads` roads.
    pub fn new(num_roads: usize) -> Self {
        Self {
            dist: vec![f64::INFINITY; num_roads],
            settled: vec![false; num_roads],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// The road count this scratch was sized for.
    pub fn num_roads(&self) -> usize {
        self.dist.len()
    }

    /// Runs Dijkstra from `source`, stopping once the smallest unsettled
    /// cost exceeds `bound`. Calls `visit(road, cost)` for every settled
    /// road — source included, at cost `0.0` — in nondecreasing cost order
    /// (ties broken by smaller road id, matching [`dijkstra`]).
    pub fn run(
        &mut self,
        graph: &Graph,
        source: RoadId,
        mut edge_cost: impl FnMut(EdgeId) -> f64,
        bound: f64,
        mut visit: impl FnMut(RoadId, f64),
    ) {
        assert_eq!(
            self.dist.len(),
            graph.num_roads(),
            "BoundedDijkstra scratch sized for a different graph"
        );
        for r in self.touched.drain(..) {
            self.dist[r.index()] = f64::INFINITY;
            self.settled[r.index()] = false;
        }
        self.heap.clear();
        if bound < 0.0 {
            return;
        }
        self.dist[source.index()] = 0.0;
        self.touched.push(source);
        self.heap.push(HeapEntry { cost: 0.0, road: source });

        while let Some(HeapEntry { cost, road }) = self.heap.pop() {
            if cost > bound {
                break;
            }
            if self.settled[road.index()] {
                continue;
            }
            self.settled[road.index()] = true;
            visit(road, cost);
            for &(nbr, edge) in graph.neighbors(road) {
                if self.settled[nbr.index()] {
                    continue;
                }
                let w = edge_cost(edge);
                guard_edge_cost(edge, w);
                let next = cost + w;
                if next <= bound && next < self.dist[nbr.index()] {
                    if self.dist[nbr.index()].is_infinite() {
                        self.touched.push(nbr);
                    }
                    self.dist[nbr.index()] = next;
                    self.heap.push(HeapEntry { cost: next, road: nbr });
                }
            }
        }
    }
}

/// Dijkstra from `source` with costs given per edge; distances only.
pub fn dijkstra(
    graph: &Graph,
    source: RoadId,
    edge_cost: impl FnMut(EdgeId) -> f64,
) -> ShortestPaths {
    run(graph, source, edge_cost, false)
}

/// Dijkstra recording predecessors so paths can be reconstructed.
pub fn dijkstra_with_paths(
    graph: &Graph,
    source: RoadId,
    edge_cost: impl FnMut(EdgeId) -> f64,
) -> ShortestPaths {
    run(graph, source, edge_cost, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::road::RoadClass;
    use proptest::prelude::*;

    /// Builds a graph and a per-edge weight table from `(a, b, w)` triples.
    fn weighted(n: usize, edges: &[(u32, u32, f64)]) -> (Graph, Vec<f64>) {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_road(RoadClass::Secondary, (i as f64, 0.0));
        }
        let mut weights = Vec::new();
        for &(x, y, w) in edges {
            if b.add_edge(RoadId(x), RoadId(y)) {
                weights.push(w);
            }
        }
        (b.build(), weights)
    }

    #[test]
    fn shortest_path_hand_example() {
        // 0 -1- 1 -1- 2, plus direct 0 -5- 2: shortest 0->2 via 1 costs 2.
        let (g, w) = weighted(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let sp = dijkstra_with_paths(&g, RoadId(0), |e| w[e.index()]);
        assert_eq!(sp.cost(RoadId(2)), 2.0);
        assert_eq!(sp.path_to(RoadId(2)).unwrap(), vec![RoadId(0), RoadId(1), RoadId(2)]);
        assert_eq!(sp.cost(RoadId(0)), 0.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let (g, w) = weighted(3, &[(0, 1, 1.0)]);
        let sp = dijkstra_with_paths(&g, RoadId(0), |e| w[e.index()]);
        assert!(!sp.reachable(RoadId(2)));
        assert!(sp.cost(RoadId(2)).is_infinite());
        assert!(sp.path_to(RoadId(2)).is_none());
    }

    #[test]
    fn zero_weight_edges_ok() {
        let (g, w) = weighted(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
        let sp = dijkstra(&g, RoadId(0), |e| w[e.index()]);
        assert_eq!(sp.cost(RoadId(2)), 0.0);
    }

    #[test]
    fn bounded_visits_source_at_zero() {
        let (g, w) = weighted(3, &[(0, 1, 1.0)]);
        let mut b = BoundedDijkstra::new(3);
        let mut seen = Vec::new();
        b.run(&g, RoadId(2), |e| w[e.index()], 0.5, |r, c| seen.push((r, c)));
        assert_eq!(seen, vec![(RoadId(2), 0.0)]);
    }

    #[test]
    fn bounded_negative_bound_visits_nothing() {
        let (g, w) = weighted(2, &[(0, 1, 1.0)]);
        let mut b = BoundedDijkstra::new(2);
        let mut seen = Vec::new();
        b.run(&g, RoadId(0), |e| w[e.index()], -1.0, |r, c| seen.push((r, c)));
        assert!(seen.is_empty());
    }

    #[test]
    fn bounded_reuse_resets_between_runs() {
        // 0 -1- 1 -1- 2; run from 0 with a wide bound, then from 2 with a
        // tight one: the second run must not see stale state from the first.
        let (g, w) = weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut b = BoundedDijkstra::new(3);
        let mut first = Vec::new();
        b.run(&g, RoadId(0), |e| w[e.index()], 10.0, |r, c| first.push((r, c)));
        assert_eq!(first, vec![(RoadId(0), 0.0), (RoadId(1), 1.0), (RoadId(2), 2.0)]);
        let mut second = Vec::new();
        b.run(&g, RoadId(2), |e| w[e.index()], 1.0, |r, c| second.push((r, c)));
        assert_eq!(second, vec![(RoadId(2), 0.0), (RoadId(1), 1.0)]);
    }

    proptest! {
        /// The bounded runner visits exactly the roads whose full-Dijkstra
        /// cost is <= bound, with bit-identical costs, regardless of how
        /// many runs came before it on the same scratch.
        #[test]
        fn bounded_matches_full_within_bound(
            raw_edges in proptest::collection::vec((0u32..8, 0u32..8, 0.0..4.0f64), 1..20),
            bound in 0.0..8.0f64,
        ) {
            let edges: Vec<(u32, u32, f64)> =
                raw_edges.into_iter().filter(|(a, b, _)| a != b).collect();
            prop_assume!(!edges.is_empty());
            let (g, w) = weighted(8, &edges);
            let mut scratch = BoundedDijkstra::new(8);
            for src in 0..8u32 {
                let full = dijkstra(&g, RoadId(src), |e| w[e.index()]);
                let mut seen = Vec::new();
                scratch.run(&g, RoadId(src), |e| w[e.index()], bound, |r, c| seen.push((r, c)));
                for pair in seen.windows(2) {
                    prop_assert!(pair[0].1 <= pair[1].1, "visit costs must be nondecreasing");
                }
                seen.sort_by_key(|a| a.0);
                let expect: Vec<(RoadId, f64)> = (0..8u32)
                    .map(RoadId)
                    .filter(|&r| full.cost(r) <= bound)
                    .map(|r| (r, full.cost(r)))
                    .collect();
                prop_assert_eq!(seen.len(), expect.len());
                for ((ra, ca), (rb, cb)) in seen.iter().zip(expect.iter()) {
                    prop_assert_eq!(ra, rb);
                    prop_assert_eq!(ca.to_bits(), cb.to_bits(), "cost bits differ at {:?}", ra);
                }
            }
        }
    }

    /// Brute-force all simple paths for cross-checking.
    fn brute_force(g: &Graph, w: &[f64], s: RoadId, t: RoadId) -> f64 {
        fn rec(
            g: &Graph,
            w: &[f64],
            cur: RoadId,
            t: RoadId,
            seen: &mut Vec<bool>,
            acc: f64,
            best: &mut f64,
        ) {
            if cur == t {
                *best = best.min(acc);
                return;
            }
            for &(nbr, e) in g.neighbors(cur) {
                if !seen[nbr.index()] {
                    seen[nbr.index()] = true;
                    rec(g, w, nbr, t, seen, acc + w[e.index()], best);
                    seen[nbr.index()] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        let mut seen = vec![false; g.num_roads()];
        seen[s.index()] = true;
        rec(g, w, s, t, &mut seen, 0.0, &mut best);
        best
    }

    proptest! {
        /// Dijkstra matches exhaustive path enumeration on small random graphs.
        #[test]
        fn matches_brute_force(
            raw_edges in proptest::collection::vec((0u32..7, 0u32..7, 0.0..10.0f64), 1..15),
        ) {
            let edges: Vec<(u32, u32, f64)> =
                raw_edges.into_iter().filter(|(a, b, _)| a != b).collect();
            prop_assume!(!edges.is_empty());
            let (g, w) = weighted(7, &edges);
            let sp = dijkstra(&g, RoadId(0), |e| w[e.index()]);
            for t in 0..7u32 {
                let bf = brute_force(&g, &w, RoadId(0), RoadId(t));
                if bf.is_finite() {
                    prop_assert!((sp.cost(RoadId(t)) - bf).abs() < 1e-9,
                        "road {t}: dijkstra {} vs brute {bf}", sp.cost(RoadId(t)));
                } else {
                    prop_assert!(!sp.reachable(RoadId(t)));
                }
            }
        }

        /// Triangle inequality on the distance function.
        #[test]
        fn triangle_inequality(
            raw_edges in proptest::collection::vec((0u32..6, 0u32..6, 0.1..5.0f64), 3..12),
        ) {
            let edges: Vec<(u32, u32, f64)> =
                raw_edges.into_iter().filter(|(a, b, _)| a != b).collect();
            prop_assume!(!edges.is_empty());
            let (g, w) = weighted(6, &edges);
            let from0 = dijkstra(&g, RoadId(0), |e| w[e.index()]);
            for mid in 0..6u32 {
                if !from0.reachable(RoadId(mid)) {
                    continue;
                }
                let from_mid = dijkstra(&g, RoadId(mid), |e| w[e.index()]);
                for t in 0..6u32 {
                    if from_mid.reachable(RoadId(t)) {
                        prop_assert!(
                            from0.cost(RoadId(t))
                                <= from0.cost(RoadId(mid)) + from_mid.cost(RoadId(t)) + 1e-9
                        );
                    }
                }
            }
        }
    }
}
