//! Connected components.
//!
//! The gMission scenario (Section VII-A) selects "a mutually connected
//! sub-component" of the network as the query set; the Fig. 5 experiment
//! grows connected sub-networks of 150–600 roads. Both build on these
//! utilities.

use crate::csr::Graph;
use crate::road::RoadId;
use std::collections::VecDeque;

/// Labels every road with a component index (`0..num_components`) and
/// returns `(labels, num_components)`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_roads();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = VecDeque::new();
    for start in graph.road_ids() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        label[start.index()] = next;
        queue.push_back(start);
        while let Some(r) = queue.pop_front() {
            for &(nbr, _) in graph.neighbors(r) {
                if label[nbr.index()] == usize::MAX {
                    label[nbr.index()] = next;
                    queue.push_back(nbr);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Road ids of the largest connected component (ties broken by lowest
/// component label). Empty for an empty graph.
pub fn largest_component(graph: &Graph) -> Vec<RoadId> {
    let (labels, count) = connected_components(graph);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best =
        sizes.iter().enumerate().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))).map(|(i, _)| i);
    let Some(best) = best else {
        return Vec::new();
    };
    graph.road_ids().filter(|r| labels[r.index()] == best).collect()
}

/// Grows a connected sub-component of exactly `size` roads by BFS from
/// `seed`, or `None` when the seed's component is smaller than `size`.
///
/// The traversal order is deterministic (CSR adjacency order), so the same
/// seed always yields the same sub-network — required for reproducible
/// Fig. 5 sweeps.
pub fn grow_connected_subset(graph: &Graph, seed: RoadId, size: usize) -> Option<Vec<RoadId>> {
    let mut out = Vec::with_capacity(size);
    let mut seen = vec![false; graph.num_roads()];
    let mut queue = VecDeque::new();
    seen[seed.index()] = true;
    queue.push_back(seed);
    while let Some(r) = queue.pop_front() {
        out.push(r);
        if out.len() == size {
            return Some(out);
        }
        for &(nbr, _) in graph.neighbors(r) {
            if !seen[nbr.index()] {
                seen[nbr.index()] = true;
                queue.push_back(nbr);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::road::RoadClass;

    /// Two components: triangle {0,1,2} and edge {3,4}; isolated 5.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_road(RoadClass::Secondary, (i as f64, 0.0));
        }
        b.add_edge(RoadId(0), RoadId(1));
        b.add_edge(RoadId(1), RoadId(2));
        b.add_edge(RoadId(0), RoadId(2));
        b.add_edge(RoadId(3), RoadId(4));
        b.build()
    }

    #[test]
    fn component_count_and_labels() {
        let g = fixture();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn largest_component_is_triangle() {
        let g = fixture();
        let mut comp = largest_component(&g);
        comp.sort();
        assert_eq!(comp, vec![RoadId(0), RoadId(1), RoadId(2)]);
    }

    #[test]
    fn grow_connected_subset_exact_size() {
        let g = fixture();
        let sub = grow_connected_subset(&g, RoadId(0), 2).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0], RoadId(0));
        // Requesting more roads than the component holds fails.
        assert!(grow_connected_subset(&g, RoadId(3), 3).is_none());
    }

    #[test]
    fn grow_is_deterministic() {
        let g = fixture();
        let a = grow_connected_subset(&g, RoadId(1), 3).unwrap();
        let b = grow_connected_subset(&g, RoadId(1), 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = GraphBuilder::new().build();
        let (labels, count) = connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert!(largest_component(&g).is_empty());
    }
}
