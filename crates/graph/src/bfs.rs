//! Multi-source BFS layering and hop distances.
//!
//! GSP (Alg. 5) schedules its coordinate updates by ascending minimum
//! hop-count towards the crowdsourced roads: [`bfs_layers`] produces exactly
//! that partition `{V_1, ..., V_L}`. Table III's 1-hop/2-hop coverage also
//! builds on [`hop_distances`].

use crate::csr::Graph;
use crate::road::RoadId;
use std::collections::VecDeque;

/// Minimum hop distance from every road to the nearest source.
///
/// Sources themselves get 0; unreachable roads get `usize::MAX`.
pub fn hop_distances(graph: &Graph, sources: &[RoadId]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.num_roads()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] != 0 || !queue.contains(&s) {
            dist[s.index()] = 0;
        }
        queue.push_back(s);
    }
    // Deduplicate: mark sources before the sweep (multiple pushes of the
    // same source are harmless because of the dist check below).
    while let Some(r) = queue.pop_front() {
        let d = dist[r.index()];
        for &(nbr, _) in graph.neighbors(r) {
            if dist[nbr.index()] == usize::MAX {
                dist[nbr.index()] = d + 1;
                queue.push_back(nbr);
            }
        }
    }
    dist
}

/// Partitions all non-source roads into BFS layers by hop distance from the
/// source set: `layers[0]` is the 1-hop ring, `layers[1]` the 2-hop ring,
/// and so on. Unreachable roads are returned separately.
///
/// This is the GSP update schedule: roads in the same layer share their
/// minimum hop-count towards the sampled roads, so they go in the same
/// update loop.
pub fn bfs_layers(graph: &Graph, sources: &[RoadId]) -> (Vec<Vec<RoadId>>, Vec<RoadId>) {
    let dist = hop_distances(graph, sources);
    let max_d = dist.iter().filter(|&&d| d != usize::MAX).max().copied().unwrap_or(0);
    let mut layers: Vec<Vec<RoadId>> = vec![Vec::new(); max_d];
    let mut unreachable = Vec::new();
    for r in graph.road_ids() {
        match dist[r.index()] {
            0 => {}
            usize::MAX => unreachable.push(r),
            d => layers[d - 1].push(r),
        }
    }
    (layers, unreachable)
}

/// Set of roads within `hops` hops of any source, including sources — the
/// "k-hop coverage" used by Table III.
pub fn k_hop_neighborhood(graph: &Graph, sources: &[RoadId], hops: usize) -> Vec<RoadId> {
    let dist = hop_distances(graph, sources);
    graph.road_ids().filter(|r| dist[r.index()] <= hops).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::road::RoadClass;

    /// 0-1-2-3-4 path plus isolated 5.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_road(RoadClass::Secondary, (i as f64, 0.0));
        }
        for i in 0..4u32 {
            b.add_edge(RoadId(i), RoadId(i + 1));
        }
        b.build()
    }

    #[test]
    fn hop_distances_from_single_source() {
        let g = fixture();
        let d = hop_distances(&g, &[RoadId(0)]);
        assert_eq!(&d[..5], &[0, 1, 2, 3, 4]);
        assert_eq!(d[5], usize::MAX);
    }

    #[test]
    fn hop_distances_multi_source_takes_min() {
        let g = fixture();
        let d = hop_distances(&g, &[RoadId(0), RoadId(4)]);
        assert_eq!(&d[..5], &[0, 1, 2, 1, 0]);
    }

    #[test]
    fn layers_partition_non_sources() {
        let g = fixture();
        let (layers, unreachable) = bfs_layers(&g, &[RoadId(2)]);
        assert_eq!(layers.len(), 2);
        let mut l1 = layers[0].clone();
        l1.sort();
        assert_eq!(l1, vec![RoadId(1), RoadId(3)]);
        let mut l2 = layers[1].clone();
        l2.sort();
        assert_eq!(l2, vec![RoadId(0), RoadId(4)]);
        assert_eq!(unreachable, vec![RoadId(5)]);
        // All roads accounted for exactly once.
        let total: usize = layers.iter().map(Vec::len).sum::<usize>() + unreachable.len() + 1;
        assert_eq!(total, g.num_roads());
    }

    #[test]
    fn empty_sources_everything_unreachable() {
        let g = fixture();
        let (layers, unreachable) = bfs_layers(&g, &[]);
        assert!(layers.is_empty());
        assert_eq!(unreachable.len(), 6);
    }

    #[test]
    fn k_hop_neighborhood_grows() {
        let g = fixture();
        let h0 = k_hop_neighborhood(&g, &[RoadId(2)], 0);
        let h1 = k_hop_neighborhood(&g, &[RoadId(2)], 1);
        let h2 = k_hop_neighborhood(&g, &[RoadId(2)], 2);
        assert_eq!(h0, vec![RoadId(2)]);
        assert_eq!(h1.len(), 3);
        assert_eq!(h2.len(), 5);
        assert!(!h2.contains(&RoadId(5)));
    }

    #[test]
    fn duplicate_sources_are_harmless() {
        let g = fixture();
        let d = hop_distances(&g, &[RoadId(0), RoadId(0), RoadId(0)]);
        assert_eq!(&d[..3], &[0, 1, 2]);
    }
}
