//! Plain-text network serialization.
//!
//! A simple line format so networks can be checked into experiments,
//! diffed, and shared between the CLI and the library:
//!
//! ```text
//! # crowd-rtse network v1
//! road <id> <class> <length_m> <x> <y>
//! edge <a> <b>
//! ```
//!
//! Roads must appear in dense id order (the same invariant
//! [`crate::GraphBuilder`] enforces).

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::road::{Road, RoadClass, RoadId};
use std::io::{self, BufRead, Write};

/// Magic header line.
pub const HEADER: &str = "# crowd-rtse network v1";

/// Writes a graph in the text format.
pub fn write_network<W: Write>(mut w: W, graph: &Graph) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for road in graph.roads() {
        writeln!(
            w,
            "road {} {} {} {} {}",
            road.id.0,
            class_tag(road.class),
            road.length_m,
            road.position.0,
            road.position.1
        )?;
    }
    for &(a, b) in graph.edges() {
        writeln!(w, "edge {} {}", a.0, b.0)?;
    }
    Ok(())
}

/// Parse failure with its 1-based line number.
#[derive(Debug)]
pub struct NetworkParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for NetworkParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetworkParseError {}

/// Reads a graph written by [`write_network`].
///
/// # Errors
/// Returns [`NetworkParseError`] on malformed input (I/O errors are folded
/// into it with the current line number).
pub fn read_network<R: BufRead>(r: R) -> Result<Graph, NetworkParseError> {
    let mut builder = GraphBuilder::new();
    let err = |line: usize, message: String| NetworkParseError { line, message };
    for (i, line) in r.lines().enumerate() {
        let n = i + 1;
        let line = line.map_err(|e| err(n, format!("io error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("road") => {
                let fields: Vec<&str> = parts.collect();
                if fields.len() != 5 {
                    return Err(err(n, format!("road needs 5 fields, got {}", fields.len())));
                }
                let id: u32 = fields[0].parse().map_err(|_| err(n, "bad road id".into()))?;
                let class = parse_class(fields[1])
                    .ok_or_else(|| err(n, format!("unknown class {:?}", fields[1])))?;
                let length: f64 = fields[2].parse().map_err(|_| err(n, "bad length".into()))?;
                let x: f64 = fields[3].parse().map_err(|_| err(n, "bad x".into()))?;
                let y: f64 = fields[4].parse().map_err(|_| err(n, "bad y".into()))?;
                if id as usize != builder.num_roads() {
                    return Err(err(
                        n,
                        format!("road ids must be dense; expected {}", builder.num_roads()),
                    ));
                }
                if !(length.is_finite() && length > 0.0) {
                    return Err(err(n, "length must be positive and finite".into()));
                }
                let mut road = Road::new(RoadId(id), class, (x, y));
                road.length_m = length;
                builder.push_road(road);
            }
            Some("edge") => {
                let a: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(n, "bad edge endpoint".into()))?;
                let b: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(n, "bad edge endpoint".into()))?;
                if parts.next().is_some() {
                    return Err(err(n, "edge takes exactly 2 fields".into()));
                }
                if a == b {
                    return Err(err(n, "self-loop".into()));
                }
                if (a as usize) >= builder.num_roads() || (b as usize) >= builder.num_roads() {
                    return Err(err(n, "edge references unknown road".into()));
                }
                builder.add_edge(RoadId(a), RoadId(b));
            }
            Some(other) => return Err(err(n, format!("unknown record {other:?}"))),
            // A trimmed non-empty line always has a first field, but an
            // error keeps the parser total.
            None => return Err(err(n, "empty record".into())),
        }
    }
    Ok(builder.build())
}

fn class_tag(class: RoadClass) -> &'static str {
    match class {
        RoadClass::Highway => "highway",
        RoadClass::Arterial => "arterial",
        RoadClass::Secondary => "secondary",
        RoadClass::Local => "local",
    }
}

fn parse_class(tag: &str) -> Option<RoadClass> {
    match tag {
        "highway" => Some(RoadClass::Highway),
        "arterial" => Some(RoadClass::Arterial),
        "secondary" => Some(RoadClass::Secondary),
        "local" => Some(RoadClass::Local),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::hong_kong_like;

    #[test]
    fn round_trip_preserves_everything() {
        let g = hong_kong_like(60, 5);
        let mut buf = Vec::new();
        write_network(&mut buf, &g).unwrap();
        let back = read_network(buf.as_slice()).unwrap();
        assert_eq!(back.num_roads(), g.num_roads());
        assert_eq!(back.edges(), g.edges());
        for (a, b) in g.roads().iter().zip(back.roads().iter()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.length_m, b.length_m);
            assert_eq!(a.position, b.position);
        }
    }

    #[test]
    fn rejects_sparse_ids() {
        let text = format!("{HEADER}\nroad 1 local 100 0 0\n");
        let e = read_network(text.as_bytes()).unwrap_err();
        assert!(e.message.contains("dense"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_unknown_class_and_bad_edge() {
        let text = format!("{HEADER}\nroad 0 spaceway 100 0 0\n");
        assert!(read_network(text.as_bytes()).unwrap_err().message.contains("class"));
        let text = format!("{HEADER}\nroad 0 local 100 0 0\nroad 1 local 100 1 0\nedge 0 5\n");
        assert!(read_network(text.as_bytes()).unwrap_err().message.contains("unknown road"));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = format!(
            "{HEADER}\n\n# a comment\nroad 0 local 100 0 0\nroad 1 highway 900 1 0\nedge 0 1\n"
        );
        let g = read_network(text.as_bytes()).unwrap();
        assert_eq!(g.num_roads(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.road(RoadId(1)).class, RoadClass::Highway);
    }

    #[test]
    fn rejects_self_loop() {
        let text = format!("{HEADER}\nroad 0 local 100 0 0\nedge 0 0\n");
        assert!(read_network(text.as_bytes()).unwrap_err().message.contains("self-loop"));
    }
}
