//! Mutable construction of [`Graph`].

use crate::csr::{EdgeId, Graph};
use crate::road::{Road, RoadClass, RoadId};
use std::collections::HashSet;

/// Accumulates roads and adjacencies, then freezes them into a CSR
/// [`Graph`].
///
/// Duplicate edges are deduplicated and self-loops rejected; road ids must
/// be pushed densely in order (road `k` is the `k`-th push).
///
/// ```
/// use rtse_graph::{GraphBuilder, RoadClass, RoadId};
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_road(RoadClass::Arterial, (0.0, 0.0));
/// let c = b.add_road(RoadClass::Local, (1.0, 0.0));
/// b.add_edge(a, c);
/// let graph = b.build();
/// assert_eq!(graph.num_roads(), 2);
/// assert!(graph.are_adjacent(RoadId(0), RoadId(1)));
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    roads: Vec<Road>,
    edges: Vec<(RoadId, RoadId)>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a road whose `id` must equal the number of roads pushed so far.
    ///
    /// # Panics
    /// Panics when ids are pushed out of order — dense ids are what make the
    /// flat model-parameter arrays elsewhere in the system valid.
    pub fn push_road(&mut self, road: Road) -> RoadId {
        assert_eq!(road.id.index(), self.roads.len(), "roads must be pushed in dense id order");
        let id = road.id;
        self.roads.push(road);
        id
    }

    /// Convenience: appends a road with the next id and the class's
    /// typical length.
    pub fn add_road(&mut self, class: RoadClass, position: (f64, f64)) -> RoadId {
        let id = RoadId::from(self.roads.len());
        let mut road = Road::new(id, class, position);
        road.length_m = class.typical_length_m();
        self.push_road(road)
    }

    /// Number of roads pushed so far.
    pub fn num_roads(&self) -> usize {
        self.roads.len()
    }

    /// Adds an undirected adjacency between two existing roads.
    ///
    /// Returns `true` if the edge is new, `false` when it duplicates a prior
    /// edge (duplicates are ignored).
    ///
    /// # Panics
    /// Panics on self-loops or ids that have not been pushed yet.
    pub fn add_edge(&mut self, a: RoadId, b: RoadId) -> bool {
        assert_ne!(a, b, "self-loop on {a}");
        assert!(a.index() < self.roads.len(), "unknown road {a}");
        assert!(b.index() < self.roads.len(), "unknown road {b}");
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if !self.seen.insert(key) {
            return false;
        }
        self.edges.push((RoadId(key.0), RoadId(key.1)));
        true
    }

    /// Freezes the builder into an immutable CSR graph.
    pub fn build(self) -> Graph {
        let n = self.roads.len();
        let mut degree = vec![0u32; n];
        for &(a, b) in &self.edges {
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![(RoadId(0), EdgeId(0)); 2 * self.edges.len()];
        for (eidx, &(a, b)) in self.edges.iter().enumerate() {
            let e = EdgeId(eidx as u32);
            adj[cursor[a.index()] as usize] = (b, e);
            cursor[a.index()] += 1;
            adj[cursor[b.index()] as usize] = (a, e);
            cursor[b.index()] += 1;
        }
        // Sort each adjacency row by neighbor id so traversal order is a
        // property of the topology, not of edge insertion order; the
        // rtse-check CSR contract (`graph.adjacency_sorted`) relies on it.
        for i in 0..n {
            adj[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        let graph = Graph::from_parts(self.roads, offsets, adj, self.edges);
        #[cfg(feature = "validate")]
        if let Err(v) = rtse_check::Validate::validate(&graph) {
            rtse_check::fail(&v);
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duplicate_edges_ignored() {
        let mut b = GraphBuilder::new();
        b.add_road(RoadClass::Local, (0.0, 0.0));
        b.add_road(RoadClass::Local, (1.0, 0.0));
        assert!(b.add_edge(RoadId(0), RoadId(1)));
        assert!(!b.add_edge(RoadId(1), RoadId(0)));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        b.add_road(RoadClass::Local, (0.0, 0.0));
        b.add_edge(RoadId(0), RoadId(0));
    }

    #[test]
    #[should_panic(expected = "dense id order")]
    fn out_of_order_ids_rejected() {
        let mut b = GraphBuilder::new();
        b.push_road(Road::new(RoadId(5), RoadClass::Local, (0.0, 0.0)));
    }

    proptest! {
        /// CSR adjacency is symmetric and consistent with edge endpoints for
        /// arbitrary random edge sets.
        #[test]
        fn csr_is_symmetric(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60)) {
            let mut b = GraphBuilder::new();
            for i in 0..20 {
                b.add_road(RoadClass::Secondary, (i as f64, 0.0));
            }
            for (a, bb) in edges {
                if a != bb {
                    b.add_edge(RoadId(a), RoadId(bb));
                }
            }
            let g = b.build();
            // Every adjacency entry has a mirror with the same edge id.
            for r in g.road_ids() {
                for &(nbr, e) in g.neighbors(r) {
                    prop_assert!(g.neighbors(nbr).iter().any(|&(x, xe)| x == r && xe == e));
                    let (lo, hi) = g.edge_endpoints(e);
                    prop_assert!((lo, hi) == (r.min(nbr), r.max(nbr)));
                }
            }
            // Handshake lemma.
            let total_degree: usize = g.road_ids().map(|r| g.degree(r)).sum();
            prop_assert_eq!(total_degree, 2 * g.num_edges());
        }
    }
}
