//! Engine-level equivalence wall for [`DeltaPolicy::Delta`].
//!
//! The gsp crate proves `propagate_delta` against the full solvers in
//! isolation (`crates/gsp/tests/proptest_delta.rs`); these tests pin the
//! *wired* path — OCS selection, crowd campaign, and the Γ substrate in
//! front of the GSP step — on both [`CorrSubstrate::Dense`] and
//! [`CorrSubstrate::Sparse`]:
//!
//! * seeding a ε = 0 delta round from the slot prior is bit-identical to
//!   the cold full round (`propagate_warm(μ)` and the cold init are the
//!   same recurrence from the same start);
//! * a second round of the same slot seeded from the first one's
//!   published values lands within solver tolerance of the full
//!   recomputation while provably skipping relaxations
//!   (`gsp.delta_skipped` > 0 in the obs registry);
//! * a dimension-mismatched seed and [`DeltaPolicy::Full`] both fall back
//!   to the cold path bit-exactly.
//!
//! CI runs this suite under `RTSE_THREADS=1` and `=4` (with and without
//! `validate`), which exercises the pooled correlation builds behind
//! `corr_table` at both widths.

use crowd_rtse_core::{
    CorrSubstrate, CrowdRtse, DeltaPolicy, OfflineArtifacts, OnlineConfig, PrevRound, SpeedQuery,
};
use rtse_crowd::{uniform_costs, CostRange, WorkerPool};
use rtse_data::{SlotOfDay, SynthConfig, SynthDataset, TrafficGenerator};
use rtse_graph::generators::grid;
use rtse_graph::{Graph, RoadId};
use rtse_obs::{ObsHandle, Registry, Stage};
use rtse_rtf::SparseCorrConfig;
use std::sync::Arc;

struct World {
    graph: Graph,
    dataset: SynthDataset,
    costs: Vec<u32>,
}

fn world(seed: u64) -> World {
    let graph = grid(5, 6);
    let cfg = SynthConfig { days: 15, seed, ..SynthConfig::default() };
    let dataset = TrafficGenerator::new(&graph, cfg).generate();
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
    World { graph, dataset, costs }
}

fn substrates() -> [CorrSubstrate; 2] {
    [CorrSubstrate::Dense, CorrSubstrate::Sparse(SparseCorrConfig::default())]
}

fn engine_with(w: &World, substrate: CorrSubstrate) -> CrowdRtse<'_> {
    let offline =
        OfflineArtifacts::from_model(rtse_rtf::moment_estimate(&w.graph, &w.dataset.history))
            .with_substrate(substrate);
    CrowdRtse::new(&w.graph, offline)
}

#[test]
fn prior_seeded_epsilon_zero_round_is_bit_identical_to_cold() {
    let w = world(101);
    let slot = SlotOfDay::from_hm(8, 30);
    let query = SpeedQuery::new((0u32..12).map(RoadId).collect(), slot);
    let pool = WorkerPool::spawn(&w.graph, 40, 0.5, (0.3, 1.0), 7);
    let truth = w.dataset.ground_truth_snapshot(slot);
    for substrate in substrates() {
        let e = engine_with(&w, substrate);
        let full = e.answer_query(&query, &pool, &w.costs, truth, &OnlineConfig::default());
        let mu = e.offline().model().slot(slot).mu.clone();
        let config =
            OnlineConfig { delta: DeltaPolicy::Delta { epsilon: 0.0 }, ..Default::default() };
        let prev = PrevRound { values: &mu, observations: &[] };
        let delta = e.answer_query_warm(&query, &pool, &w.costs, truth, &config, Some(prev));
        assert_eq!(full.observations, delta.observations, "{substrate:?}: campaigns diverged");
        for (i, (f, d)) in full.all_values.iter().zip(&delta.all_values).enumerate() {
            assert_eq!(
                f.to_bits(),
                d.to_bits(),
                "{substrate:?}: road {i} differs: full {f} vs delta {d}"
            );
        }
    }
}

#[test]
fn second_round_matches_full_within_tolerance_and_skips_relaxations() {
    let w = world(103);
    let slot = SlotOfDay::from_hm(18, 0);
    let query = SpeedQuery::new((0u32..15).map(RoadId).collect(), slot);
    let pool = WorkerPool::spawn(&w.graph, 45, 0.5, (0.3, 1.0), 11);
    let truth: Vec<f64> = w.dataset.ground_truth_snapshot(slot).to_vec();
    for substrate in substrates() {
        let reg = Arc::new(Registry::new());
        let e = engine_with(&w, substrate).with_obs(ObsHandle::from_registry(reg.clone()));
        let first = e.answer_query(&query, &pool, &w.costs, &truth, &OnlineConfig::default());
        // The world moved between rounds: one road the campaign actually
        // probed slowed sharply. Everything else is unchanged, so most of
        // the network's inputs are identical.
        let moved = first.observations.first().expect("campaign probed at least one road").0;
        let mut truth2 = truth.clone();
        truth2[moved.index()] *= 0.6;
        let full2 = e.answer_query(&query, &pool, &w.costs, &truth2, &OnlineConfig::default());

        let config =
            OnlineConfig { delta: DeltaPolicy::Delta { epsilon: 1e-6 }, ..Default::default() };
        let prev = PrevRound { values: &first.all_values, observations: &first.observations };
        let skipped_before = reg.count(Stage::GspDeltaSkipped);
        let delta2 = e.answer_query_warm(&query, &pool, &w.costs, &truth2, &config, Some(prev));
        assert_eq!(full2.observations, delta2.observations, "{substrate:?}: campaigns diverged");
        for (i, (f, d)) in full2.all_values.iter().zip(&delta2.all_values).enumerate() {
            assert!((f - d).abs() < 1e-3, "{substrate:?}: road {i} drifted: full {f} vs delta {d}");
        }
        assert!(
            reg.count(Stage::GspDeltaSkipped) > skipped_before,
            "{substrate:?}: a localized change must skip relaxations"
        );
        assert_eq!(reg.count(Stage::GspDeltaFrontier), 1, "{substrate:?}: frontier not recorded");
    }
}

#[test]
fn mismatched_seed_and_full_policy_fall_back_to_cold() {
    let w = world(107);
    let slot = SlotOfDay::from_hm(12, 0);
    let query = SpeedQuery::new((3u32..10).map(RoadId).collect(), slot);
    let pool = WorkerPool::spawn(&w.graph, 30, 0.5, (0.3, 1.0), 5);
    let truth = w.dataset.ground_truth_snapshot(slot);
    let e = engine_with(&w, CorrSubstrate::Dense);
    let cold = e.answer_query(&query, &pool, &w.costs, truth, &OnlineConfig::default());

    // Wrong-dimension seed under a delta policy: silently a full round.
    let short = vec![40.0; w.graph.num_roads() - 1];
    let config = OnlineConfig { delta: DeltaPolicy::Delta { epsilon: 1e-6 }, ..Default::default() };
    let prev = PrevRound { values: &short, observations: &[] };
    let fallback = e.answer_query_warm(&query, &pool, &w.costs, truth, &config, Some(prev));

    // Full policy ignores a perfectly good seed.
    let full_policy = OnlineConfig { delta: DeltaPolicy::Full, ..Default::default() };
    let seed = PrevRound { values: &cold.all_values, observations: &cold.observations };
    let ignored = e.answer_query_warm(&query, &pool, &w.costs, truth, &full_policy, Some(seed));

    for (i, c) in cold.all_values.iter().enumerate() {
        assert_eq!(c.to_bits(), fallback.all_values[i].to_bits(), "fallback road {i}");
        assert_eq!(c.to_bits(), ignored.all_values[i].to_bits(), "full-policy road {i}");
    }
}
