//! Continuous monitoring: repeated estimation rounds over a live day.
//!
//! A deployment doesn't answer one query — it re-estimates every slot
//! while workers move and the budget meter runs. [`MonitoringSession`]
//! owns that loop state: the worker pool (stepped between rounds), the
//! cumulative payment ledger, and the previous round's estimate, which
//! warm-starts the next propagation (see `rtse_gsp::relax`).

use crate::engine::{CrowdRtse, OnlineConfig};
use crate::query::SpeedQuery;
use rtse_crowd::WorkerPool;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_gsp::relax::propagate_warm_observed;
use rtse_ocs::Selection;
use std::error::Error;
use std::fmt;

/// Why a monitoring round could not run ([`MonitoringSession::step`]).
///
/// A malformed round request must surface as a typed error, not a panic
/// or an out-of-bounds access: the serving layer (`rtse-serve`) keeps the
/// process alive across bad requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// The ground-truth snapshot does not cover the network.
    TruthLengthMismatch {
        /// Roads in the session's network.
        expected: usize,
        /// Entries in the provided snapshot.
        got: usize,
    },
    /// A queried road id is not a road of the session's network.
    RoadOutOfRange {
        /// The offending road id.
        road: RoadId,
        /// Roads in the session's network.
        num_roads: usize,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::TruthLengthMismatch { expected, got } => {
                write!(f, "truth snapshot has {got} entries but the network has {expected} roads")
            }
            StepError::RoadOutOfRange { road, num_roads } => {
                write!(f, "queried road {road} is out of range (network has {num_roads} roads)")
            }
        }
    }
}

impl Error for StepError {}

/// One round's outcome.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// The slot estimated this round.
    pub slot: SlotOfDay,
    /// Full-network estimates.
    pub values: Vec<f64>,
    /// The OCS selection.
    pub selection: Selection,
    /// Payment units spent this round.
    pub paid: u32,
    /// GSP rounds used (warm starts shrink this after round one).
    pub gsp_rounds: usize,
    /// Whether the propagation warm-started from the previous round.
    pub warm_started: bool,
}

/// Stateful multi-round estimation over a day.
pub struct MonitoringSession<'e, 'g> {
    engine: &'e CrowdRtse<'g>,
    config: OnlineConfig,
    pool: WorkerPool,
    costs: Vec<u32>,
    last_values: Option<Vec<f64>>,
    total_paid: u32,
    rounds_run: usize,
}

impl<'e, 'g> MonitoringSession<'e, 'g> {
    /// Starts a session with an initial worker distribution and cost
    /// vector.
    pub fn new(
        engine: &'e CrowdRtse<'g>,
        config: OnlineConfig,
        pool: WorkerPool,
        costs: Vec<u32>,
    ) -> Self {
        assert_eq!(costs.len(), engine.graph().num_roads(), "costs length mismatch");
        Self { engine, config, pool, costs, last_values: None, total_paid: 0, rounds_run: 0 }
    }

    /// Total payment disbursed so far.
    pub fn total_paid(&self) -> u32 {
        self.total_paid
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Current worker pool (inspection).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Runs one estimation round for `queried` at `slot` against the given
    /// ground-truth snapshot, then advances worker mobility one step.
    ///
    /// Rejects malformed rounds with a typed [`StepError`] — a truth
    /// snapshot that does not cover the network, or a queried road id
    /// outside it — instead of panicking mid-pipeline. A rejected round
    /// leaves the session untouched: no payment, no mobility step, no
    /// warm-start update.
    pub fn step(
        &mut self,
        queried: &[RoadId],
        slot: SlotOfDay,
        truth: &[f64],
    ) -> Result<RoundReport, StepError> {
        let num_roads = self.engine.graph().num_roads();
        if truth.len() != num_roads {
            return Err(StepError::TruthLengthMismatch { expected: num_roads, got: truth.len() });
        }
        if let Some(&road) = queried.iter().find(|r| r.index() >= num_roads) {
            return Err(StepError::RoadOutOfRange { road, num_roads });
        }
        let query = SpeedQuery::new(queried.to_vec(), slot);
        let candidates = self.pool.covered_roads();
        let selection = self.engine.select_roads(&query, &candidates, &self.costs, &self.config);
        let outcome = self.config.campaign.run(&self.pool, &selection.roads, &self.costs, truth);
        let params = self.engine.offline().model().slot(slot);
        let warm_started = self.last_values.is_some();
        let result = match &self.last_values {
            Some(prev) => propagate_warm_observed(
                &self.config.gsp,
                self.engine.graph(),
                params,
                &outcome.observations,
                prev,
                self.engine.obs(),
            ),
            None => self.config.gsp.propagate_observed(
                self.engine.graph(),
                params,
                &outcome.observations,
                self.engine.obs(),
            ),
        };
        self.total_paid += outcome.paid;
        self.rounds_run += 1;
        self.last_values = Some(result.values.clone());
        self.pool.step(self.engine.graph());
        Ok(RoundReport {
            slot,
            values: result.values,
            selection,
            paid: outcome.paid,
            gsp_rounds: result.rounds,
            warm_started,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineArtifacts;
    use rtse_crowd::{uniform_costs, CostRange};
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_eval::ErrorReport;
    use rtse_graph::generators::grid;
    use rtse_rtf::moment_estimate;

    fn setup() -> (rtse_graph::Graph, rtse_data::SynthDataset, Vec<u32>) {
        let graph = grid(4, 5);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 12, seed: 77, ..SynthConfig::default() },
        )
        .generate();
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, 77);
        (graph, dataset, costs)
    }

    #[test]
    fn session_runs_consecutive_rounds() {
        let (graph, dataset, costs) = setup();
        let engine = CrowdRtse::new(
            &graph,
            OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
        );
        let pool = WorkerPool::spawn(&graph, 40, 0.5, (0.3, 1.0), 3);
        let mut session = MonitoringSession::new(
            &engine,
            OnlineConfig { budget: 15, ..Default::default() },
            pool,
            costs,
        );
        let queried: Vec<RoadId> = graph.road_ids().collect();
        let start = SlotOfDay::from_hm(8, 0);
        let mut reports = Vec::new();
        for k in 0..4u16 {
            let slot = SlotOfDay(start.0 + k);
            let truth = dataset.ground_truth_snapshot(slot);
            reports.push(session.step(&queried, slot, truth).expect("well-formed round"));
        }
        assert_eq!(session.rounds_run(), 4);
        assert!(!reports[0].warm_started);
        assert!(reports[1..].iter().all(|r| r.warm_started));
        // Ledger adds up.
        let sum: u32 = reports.iter().map(|r| r.paid).sum();
        assert_eq!(session.total_paid(), sum);
        // Quality stays sane each round.
        for (k, r) in reports.iter().enumerate() {
            let slot = SlotOfDay(start.0 + k as u16);
            let truth = dataset.ground_truth_snapshot(slot);
            let rep = ErrorReport::evaluate_default(&r.values, truth, &queried);
            assert!(rep.mape < 0.6, "round {k} MAPE {}", rep.mape);
        }
    }

    #[test]
    fn warm_rounds_use_fewer_gsp_iterations_on_average() {
        let (graph, dataset, costs) = setup();
        let engine = CrowdRtse::new(
            &graph,
            OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
        );
        let mut pool = WorkerPool::spawn(&graph, 60, 0.3, (0.2, 0.6), 5);
        pool.move_probability = 0.05; // nearly static workers: same roads re-probed
        let mut session = MonitoringSession::new(
            &engine,
            OnlineConfig { budget: 20, ..Default::default() },
            pool,
            costs,
        );
        let queried: Vec<RoadId> = graph.road_ids().collect();
        let start = SlotOfDay::from_hm(12, 0);
        let mut cold_rounds = 0usize;
        let mut warm_rounds = Vec::new();
        for k in 0..5u16 {
            let slot = SlotOfDay(start.0 + k);
            let truth = dataset.ground_truth_snapshot(slot);
            let r = session.step(&queried, slot, truth).expect("well-formed round");
            if r.warm_started {
                warm_rounds.push(r.gsp_rounds);
            } else {
                cold_rounds = r.gsp_rounds;
            }
        }
        let warm_avg = warm_rounds.iter().sum::<usize>() as f64 / warm_rounds.len() as f64;
        assert!(warm_avg <= cold_rounds as f64 + 1.0, "warm avg {warm_avg} vs cold {cold_rounds}");
    }

    #[test]
    fn workers_move_between_rounds() {
        let (graph, dataset, costs) = setup();
        let engine = CrowdRtse::new(
            &graph,
            OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
        );
        let pool = WorkerPool::spawn(&graph, 30, 0.5, (0.3, 1.0), 9);
        let before = pool.covered_roads();
        let mut session = MonitoringSession::new(&engine, OnlineConfig::default(), pool, costs);
        let queried = [RoadId(0)];
        let slot = SlotOfDay::from_hm(9, 0);
        let truth = dataset.ground_truth_snapshot(slot).to_vec();
        session.step(&queried, slot, &truth).expect("well-formed round");
        let after = session.pool().covered_roads();
        assert_ne!(before, after, "mobility should change coverage");
    }

    #[test]
    fn malformed_rounds_get_typed_errors_and_leave_session_untouched() {
        let (graph, dataset, costs) = setup();
        let engine = CrowdRtse::new(
            &graph,
            OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
        );
        let pool = WorkerPool::spawn(&graph, 20, 0.5, (0.3, 1.0), 5);
        let mut session = MonitoringSession::new(&engine, OnlineConfig::default(), pool, costs);
        let slot = SlotOfDay::from_hm(10, 0);
        let n = graph.num_roads();

        // Truth snapshot too short.
        let short = vec![30.0; n - 1];
        let err = session.step(&[RoadId(0)], slot, &short).expect_err("short truth must fail");
        assert_eq!(err, StepError::TruthLengthMismatch { expected: n, got: n - 1 });

        // Queried road beyond the network.
        let truth = dataset.ground_truth_snapshot(slot);
        let bogus = RoadId(n as u32 + 7);
        let err = session.step(&[RoadId(0), bogus], slot, truth).expect_err("bogus road");
        assert_eq!(err, StepError::RoadOutOfRange { road: bogus, num_roads: n });

        // Rejected rounds must not advance the session.
        assert_eq!(session.rounds_run(), 0);
        assert_eq!(session.total_paid(), 0);

        // The session still works after rejections.
        let report = session.step(&[RoadId(0)], slot, truth).expect("valid round");
        assert_eq!(report.slot, slot);
        assert_eq!(session.rounds_run(), 1);
        let msg = StepError::RoadOutOfRange { road: bogus, num_roads: n }.to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }
}
