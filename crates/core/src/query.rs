//! Query and answer types.

use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_ocs::Selection;
use std::time::Duration;

/// A realtime traffic speed query: "what is the speed of these roads right
/// now?" (Section III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedQuery {
    /// The queried roads `R^q`.
    pub roads: Vec<RoadId>,
    /// The current time slot.
    pub slot: SlotOfDay,
}

impl SpeedQuery {
    /// Builds a query, deduplicating the road list.
    pub fn new(mut roads: Vec<RoadId>, slot: SlotOfDay) -> Self {
        roads.sort();
        roads.dedup();
        Self { roads, slot }
    }
}

/// The engine's answer, including the intermediates the experiments need.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Estimated speed per queried road, parallel to the query's `roads`.
    pub estimates: Vec<f64>,
    /// Full-network estimate (one value per road).
    pub all_values: Vec<f64>,
    /// The OCS selection that was crowdsourced.
    pub selection: Selection,
    /// Payment units actually disbursed by the campaign.
    pub paid: u32,
    /// Time spent selecting roads (OCS).
    pub selection_time: Duration,
    /// Time spent propagating (GSP).
    pub propagation_time: Duration,
}

impl QueryAnswer {
    /// The estimate for one queried road (`None` if it was not queried).
    pub fn estimate_for(&self, query: &SpeedQuery, road: RoadId) -> Option<f64> {
        query.roads.iter().position(|&r| r == road).map(|i| self.estimates[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_dedups_and_sorts() {
        let q = SpeedQuery::new(vec![RoadId(3), RoadId(1), RoadId(3)], SlotOfDay(5));
        assert_eq!(q.roads, vec![RoadId(1), RoadId(3)]);
    }

    #[test]
    fn estimate_lookup() {
        let q = SpeedQuery::new(vec![RoadId(1), RoadId(3)], SlotOfDay(0));
        let a = QueryAnswer {
            estimates: vec![10.0, 20.0],
            all_values: vec![],
            selection: Selection::empty(),
            paid: 0,
            selection_time: Duration::ZERO,
            propagation_time: Duration::ZERO,
        };
        assert_eq!(a.estimate_for(&q, RoadId(3)), Some(20.0));
        assert_eq!(a.estimate_for(&q, RoadId(2)), None);
    }
}
