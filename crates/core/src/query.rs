//! Query and answer types.

use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_ocs::Selection;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Why a [`SpeedQuery`] could not be built ([`SpeedQuery::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The road list was empty: a speed query must name at least one road.
    EmptyRoads,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyRoads => write!(f, "speed query names no roads"),
        }
    }
}

impl Error for QueryError {}

/// A realtime traffic speed query: "what is the speed of these roads right
/// now?" (Section III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedQuery {
    /// The queried roads `R^q`.
    pub roads: Vec<RoadId>,
    /// The current time slot.
    pub slot: SlotOfDay,
}

impl SpeedQuery {
    /// Builds a query, deduplicating the road list.
    ///
    /// Infallible by design (tests and internal callers construct queries
    /// from known-good road sets); an empty road list produces a query
    /// whose answer is trivially empty. Request-admission paths that must
    /// reject malformed input use [`SpeedQuery::try_new`] instead.
    pub fn new(mut roads: Vec<RoadId>, slot: SlotOfDay) -> Self {
        roads.sort();
        roads.dedup();
        Self { roads, slot }
    }

    /// Fallible constructor for request-admission paths: rejects an empty
    /// road list with a typed error instead of silently accepting a
    /// no-op query. The serving layer routes every external request
    /// through here.
    pub fn try_new(roads: Vec<RoadId>, slot: SlotOfDay) -> Result<Self, QueryError> {
        if roads.is_empty() {
            return Err(QueryError::EmptyRoads);
        }
        Ok(Self::new(roads, slot))
    }
}

/// The engine's answer, including the intermediates the experiments need.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Estimated speed per queried road, parallel to the query's `roads`.
    pub estimates: Vec<f64>,
    /// Full-network estimate (one value per road).
    pub all_values: Vec<f64>,
    /// The OCS selection that was crowdsourced.
    pub selection: Selection,
    /// The aggregated crowd observations GSP propagated (one per road
    /// the campaign actually answered). Serving layers keep these next
    /// to the published values so the next round of the same slot can
    /// diff against them (delta re-propagation).
    pub observations: Vec<(RoadId, f64)>,
    /// Payment units actually disbursed by the campaign.
    pub paid: u32,
    /// Time spent selecting roads (OCS).
    pub selection_time: Duration,
    /// Time spent propagating (GSP).
    pub propagation_time: Duration,
}

impl QueryAnswer {
    /// The estimate for one queried road (`None` if it was not queried).
    pub fn estimate_for(&self, query: &SpeedQuery, road: RoadId) -> Option<f64> {
        query.roads.iter().position(|&r| r == road).map(|i| self.estimates[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_dedups_and_sorts() {
        let q = SpeedQuery::new(vec![RoadId(3), RoadId(1), RoadId(3)], SlotOfDay(5));
        assert_eq!(q.roads, vec![RoadId(1), RoadId(3)]);
    }

    #[test]
    fn try_new_rejects_empty_road_lists() {
        assert_eq!(SpeedQuery::try_new(vec![], SlotOfDay(0)), Err(QueryError::EmptyRoads));
        let q = SpeedQuery::try_new(vec![RoadId(2), RoadId(2)], SlotOfDay(1)).expect("non-empty");
        assert_eq!(q.roads, vec![RoadId(2)]);
        assert!(QueryError::EmptyRoads.to_string().contains("no roads"));
    }

    #[test]
    fn estimate_lookup() {
        let q = SpeedQuery::new(vec![RoadId(1), RoadId(3)], SlotOfDay(0));
        let a = QueryAnswer {
            estimates: vec![10.0, 20.0],
            all_values: vec![],
            selection: Selection::empty(),
            observations: vec![],
            paid: 0,
            selection_time: Duration::ZERO,
            propagation_time: Duration::ZERO,
        };
        assert_eq!(a.estimate_for(&q, RoadId(3)), Some(20.0));
        assert_eq!(a.estimate_for(&q, RoadId(2)), None);
    }
}
