//! Budget allocation across queries and across the day.
//!
//! The paper fixes one budget `K` per query. A deployment has a *daily*
//! budget and must decide when (and for whom) to spend it:
//!
//! * [`merge_queries`] — concurrent queries at the same slot are answered
//!   best by one joint OCS run over the union of their queried roads (the
//!   objective is a sum over queried roads, so merging loses nothing and
//!   lets probes serve several queries at once);
//! * [`plan_daily_budget`] — splits a day's budget across monitoring
//!   slots proportionally to the network's expected volatility
//!   `Σ_i σ_i^t` in each slot: calm overnight slots get little, rush
//!   hours get the bulk — the same weak-periodicity-first principle OCS
//!   applies within a slot (Eq. 13), lifted to the time axis.

use crate::query::SpeedQuery;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_rtf::RtfModel;

/// Merges concurrent queries at the same slot into one joint query.
///
/// # Panics
/// Panics when the queries disagree on the slot or the list is empty.
pub fn merge_queries(queries: &[SpeedQuery]) -> SpeedQuery {
    assert!(!queries.is_empty(), "need at least one query");
    let first = &queries[0];
    assert!(queries.iter().all(|q| q.slot == first.slot), "merge_queries requires a common slot");
    let mut roads: Vec<RoadId> = queries.iter().flat_map(|q| q.roads.iter().copied()).collect();
    roads.sort();
    roads.dedup();
    SpeedQuery { roads, slot: first.slot }
}

/// Splits `total_budget` across `slots` proportionally to the model's
/// per-slot volatility mass `Σ_i σ_i^t`, with largest-remainder rounding
/// so the shares sum exactly to the total.
///
/// # Panics
/// Panics when `slots` is empty.
pub fn plan_daily_budget(model: &RtfModel, slots: &[SlotOfDay], total_budget: u32) -> Vec<u32> {
    assert!(!slots.is_empty(), "need at least one slot");
    let mass: Vec<f64> = slots.iter().map(|&t| model.slot(t).sigma.iter().sum::<f64>()).collect();
    let total_mass: f64 = mass.iter().sum();
    if total_mass <= 0.0 {
        // Degenerate: uniform split.
        let base = total_budget / slots.len() as u32;
        let mut out = vec![base; slots.len()];
        let mut rem = total_budget - base * slots.len() as u32;
        for v in out.iter_mut() {
            if rem == 0 {
                break;
            }
            *v += 1;
            rem -= 1;
        }
        return out;
    }
    // Largest-remainder apportionment.
    let exact: Vec<f64> = mass.iter().map(|m| total_budget as f64 * m / total_mass).collect();
    let mut out: Vec<u32> = exact.iter().map(|e| e.floor() as u32).collect();
    let assigned: u32 = out.iter().sum();
    let mut remainders: Vec<(usize, f64)> =
        exact.iter().enumerate().map(|(i, e)| (i, e - e.floor())).collect();
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for k in 0..(total_budget - assigned) as usize {
        out[remainders[k % remainders.len()].0] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_data::{SynthConfig, TrafficGenerator, SLOTS_PER_DAY};
    use rtse_graph::generators::grid;
    use rtse_rtf::moment_estimate;

    #[test]
    fn merge_unions_and_dedups() {
        let slot = SlotOfDay(10);
        let a = SpeedQuery::new(vec![RoadId(1), RoadId(3)], slot);
        let b = SpeedQuery::new(vec![RoadId(3), RoadId(5)], slot);
        let m = merge_queries(&[a, b]);
        assert_eq!(m.roads, vec![RoadId(1), RoadId(3), RoadId(5)]);
        assert_eq!(m.slot, slot);
    }

    #[test]
    #[should_panic(expected = "common slot")]
    fn merge_rejects_mixed_slots() {
        let a = SpeedQuery::new(vec![RoadId(1)], SlotOfDay(1));
        let b = SpeedQuery::new(vec![RoadId(2)], SlotOfDay(2));
        merge_queries(&[a, b]);
    }

    fn trained_model() -> (rtse_graph::Graph, RtfModel) {
        let graph = grid(3, 4);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 15, incidents_per_day: 0.0, seed: 8, ..SynthConfig::default() },
        )
        .generate();
        let model = moment_estimate(&graph, &ds.history);
        (graph, model)
    }

    #[test]
    fn budget_sums_exactly_and_favors_rush_hour() {
        let (_g, model) = trained_model();
        let slots: Vec<SlotOfDay> = (0..SLOTS_PER_DAY as u16).step_by(12).map(SlotOfDay).collect();
        let total = 500u32;
        let plan = plan_daily_budget(&model, &slots, total);
        assert_eq!(plan.iter().sum::<u32>(), total);
        // The generator makes rush hours the most volatile: the 08:30-ish
        // slot should receive more than the 03:00-ish slot.
        let idx_of = |h: u32| slots.iter().position(|s| s.hour() == h).expect("hour sampled");
        assert!(
            plan[idx_of(8)] > plan[idx_of(3)],
            "rush {} vs night {}",
            plan[idx_of(8)],
            plan[idx_of(3)]
        );
    }

    #[test]
    fn single_slot_gets_everything() {
        let (_g, model) = trained_model();
        let plan = plan_daily_budget(&model, &[SlotOfDay(100)], 77);
        assert_eq!(plan, vec![77]);
    }

    #[test]
    fn zero_budget_all_zero() {
        let (_g, model) = trained_model();
        let slots = [SlotOfDay(0), SlotOfDay(100), SlotOfDay(200)];
        let plan = plan_daily_budget(&model, &slots, 0);
        assert_eq!(plan, vec![0, 0, 0]);
    }
}
