//! GSP adapted to the shared [`Estimator`] interface.

use rtse_baselines::{EstimationContext, Estimator};
use rtse_graph::RoadId;
use rtse_gsp::GspSolver;

/// GSP as an [`Estimator`], so the evaluation harness can sweep it next to
/// LASSO/GRMC/Per.
#[derive(Debug, Clone, Copy, Default)]
pub struct GspEstimator {
    /// The wrapped solver configuration.
    pub solver: GspSolver,
}

impl Estimator for GspEstimator {
    fn name(&self) -> &'static str {
        "GSP"
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, observations: &[(RoadId, f64)]) -> Vec<f64> {
        self.solver.propagate(ctx.graph, ctx.model.slot(ctx.slot), observations).values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_baselines::Per;
    use rtse_data::{SlotOfDay, SynthConfig, TrafficGenerator};
    use rtse_eval::ErrorReport;
    use rtse_graph::generators::grid;
    use rtse_rtf::moment_estimate;

    #[test]
    fn gsp_estimator_beats_per_with_observations() {
        let graph = grid(4, 4);
        let cfg = SynthConfig {
            days: 25,
            seed: 17,
            incidents_per_day: 2.0,
            severity_range: (0.5, 0.7),
            duration_range: (40, 80),
            ..SynthConfig::default()
        };
        let dataset = TrafficGenerator::new(&graph, cfg).generate();
        let model = moment_estimate(&graph, &dataset.history);
        // A slot where at least one incident is active, if any.
        let slot = dataset
            .today_incidents
            .first()
            .map(|i| SlotOfDay((i.start.index() + i.duration_slots / 2).min(287) as u16))
            .unwrap_or(SlotOfDay::from_hm(8, 30));
        let ctx =
            EstimationContext { graph: &graph, model: &model, history: &dataset.history, slot };
        let truth = dataset.ground_truth_snapshot(slot).to_vec();
        let observed: Vec<(RoadId, f64)> =
            (0..graph.num_roads()).step_by(3).map(|i| (RoadId::from(i), truth[i])).collect();
        let queried: Vec<RoadId> = graph.road_ids().collect();

        let gsp = GspEstimator::default().estimate(&ctx, &observed);
        let per = Per.estimate(&ctx, &observed);
        let gsp_report = ErrorReport::evaluate_default(&gsp, &truth, &queried);
        let per_report = ErrorReport::evaluate_default(&per, &truth, &queried);
        assert!(
            gsp_report.mape <= per_report.mape + 1e-9,
            "GSP {} vs Per {}",
            gsp_report.mape,
            per_report.mape
        );
    }

    #[test]
    fn name_is_gsp() {
        assert_eq!(GspEstimator::default().name(), "GSP");
    }
}
