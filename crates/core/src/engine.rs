//! The online pipeline: OCS → crowdsourcing → GSP.

use crate::offline::OfflineArtifacts;
use crate::query::{QueryAnswer, SpeedQuery};
use rtse_crowd::{CrowdCampaign, WorkerPool};
use rtse_graph::{Graph, RoadId};
use rtse_gsp::{propagate_delta_observed, DeltaGsp, GspSolver};
use rtse_obs::ObsHandle;
use rtse_ocs::{
    lazy_hybrid_greedy, lazy_objective_greedy, lazy_ratio_greedy, observed_select, random_select,
    OcsInstance,
};

/// Which OCS solver answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Hybrid-Greedy (Alg. 4) — the paper's recommended solver.
    #[default]
    Hybrid,
    /// Ratio-Greedy (Alg. 2).
    Ratio,
    /// Objective-Greedy (Alg. 3).
    Objective,
    /// Random feasible selection (baseline), seeded.
    Random(u64),
}

/// How the GSP step treats the previous round of the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DeltaPolicy {
    /// Always run a full cold propagation (the historical behavior, and
    /// the default: delta re-propagation is opt-in).
    #[default]
    Full,
    /// Warm-start from the previous round and re-relax only the dirty
    /// frontier ([`rtse_gsp::delta`]): an observation must move a road's
    /// previous value by more than `epsilon` to seed its neighborhood.
    /// `epsilon <= 0.0` keeps the warm start but sweeps fully —
    /// bit-identical to warm full propagation.
    Delta {
        /// Input-movement threshold ε (see [`rtse_gsp::DeltaGsp`]).
        epsilon: f64,
    },
}

/// Online-stage configuration.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Crowdsourcing budget `K` in payment units.
    pub budget: u32,
    /// Redundancy threshold `θ` (paper's fine-tuned value: 0.92).
    pub theta: f64,
    /// OCS solver.
    pub strategy: SelectionStrategy,
    /// Crowd campaign settings (aggregation rule, answer-noise seed).
    pub campaign: CrowdCampaign,
    /// GSP settings.
    pub gsp: GspSolver,
    /// Whether [`CrowdRtse::answer_query_warm`] may re-propagate
    /// incrementally from a previous round.
    pub delta: DeltaPolicy,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            budget: 30,
            theta: 0.92,
            strategy: SelectionStrategy::Hybrid,
            campaign: CrowdCampaign::default(),
            gsp: GspSolver::default(),
            delta: DeltaPolicy::Full,
        }
    }
}

/// The previous round's published state for one slot — what
/// [`CrowdRtse::answer_query_warm`] seeds a delta propagation from. A
/// borrowed view: the serving layer keeps the owned pair in its per-slot
/// cache and lends it for the duration of one recompute.
///
/// Both fields must come from the **same slot and model** as the new
/// query: the serving layer guarantees this structurally by storing the
/// pair in its per-slot cache cells, so a stale fixed point can never
/// seed a different slot's round.
#[derive(Debug, Clone, Copy)]
pub struct PrevRound<'a> {
    /// Full-network values the previous round published.
    pub values: &'a [f64],
    /// The crowd observations that round propagated (used to detect
    /// roads whose observation was *removed* since — invisible to a
    /// value diff, because the stored value still equals the stale
    /// observation).
    pub observations: &'a [(RoadId, f64)],
}

/// The CrowdRTSE engine: a trained offline stage bound to a network.
pub struct CrowdRtse<'g> {
    graph: &'g Graph,
    offline: OfflineArtifacts,
    obs: ObsHandle,
}

impl<'g> CrowdRtse<'g> {
    /// Binds trained offline artifacts to their network.
    ///
    /// # Panics
    /// Panics when [`CrowdRtse::try_new`] would reject the pair — a
    /// dimension mismatch always, and any violated model contract when the
    /// `validate` feature is on.
    pub fn new(graph: &'g Graph, offline: OfflineArtifacts) -> Self {
        match Self::try_new(graph, offline) {
            Ok(engine) => engine,
            Err(v) => rtse_check::fail(&v),
        }
    }

    /// Fallible constructor: checks the engine's entry contract and
    /// returns the violation instead of aborting.
    ///
    /// The dimension check always runs. With the `validate` feature the
    /// full model contract is enforced too (every slot's parameters finite
    /// with `σ > 0` and `ρ ∈ [0, 1]`, plus the graph's CSR contract), so a
    /// corrupted or hand-poisoned model is rejected here — at the engine
    /// boundary — rather than surfacing as NaN estimates downstream.
    pub fn try_new(
        graph: &'g Graph,
        offline: OfflineArtifacts,
    ) -> Result<Self, rtse_check::InvariantViolation> {
        rtse_check::ensure(
            offline.model().matches_graph(graph),
            "engine.model_matches_graph",
            || {
                format!(
                    "model covers {} roads / {} edges but graph has {} / {}",
                    offline.model().num_roads(),
                    offline.model().num_edges(),
                    graph.num_roads(),
                    graph.num_edges()
                )
            },
        )?;
        #[cfg(feature = "validate")]
        {
            rtse_check::Validate::validate(graph)?;
            rtse_check::Validate::validate(offline.model())?;
        }
        Ok(Self { graph, offline, obs: ObsHandle::noop() })
    }

    /// Routes the engine's online path through `obs`: OCS solves become
    /// `ocs.select` spans, GSP runs become `gsp.round` spans (plus a
    /// `gsp.iters_to_converge` sample each), and lazy correlation-table
    /// builds record one `corr.dijkstra_row` span per road.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.offline.set_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// The observability handle the engine records into (no-op by default).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// The network this engine serves.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The offline artifacts (model + correlation tables).
    pub fn offline(&self) -> &OfflineArtifacts {
        &self.offline
    }

    /// Runs only the OCS step: selects the crowdsourced roads for a query
    /// given the current candidate set. Exposed for callers that manage
    /// the campaign and propagation themselves (e.g. the continuous
    /// [`crate::session::MonitoringSession`]).
    pub fn select_roads(
        &self,
        query: &SpeedQuery,
        candidates: &[rtse_graph::RoadId],
        costs: &[u32],
        config: &OnlineConfig,
    ) -> rtse_ocs::Selection {
        let params = self.offline.model().slot(query.slot);
        let corr = self.offline.corr_table(self.graph, query.slot);
        let instance = OcsInstance {
            sigma: &params.sigma,
            corr: corr.as_ref(),
            queried: &query.roads,
            candidates,
            costs,
            budget: config.budget,
            theta: config.theta,
        };
        observed_select(&self.obs, || match config.strategy {
            SelectionStrategy::Hybrid => lazy_hybrid_greedy(&instance),
            SelectionStrategy::Ratio => lazy_ratio_greedy(&instance),
            SelectionStrategy::Objective => lazy_objective_greedy(&instance),
            SelectionStrategy::Random(seed) => random_select(&instance, seed),
        })
    }

    /// Answers a query (Fig. 1's online stage).
    ///
    /// `pool` supplies the current worker distribution (defining `R^w`),
    /// `costs` the per-road answer requirements, and `true_speeds` the
    /// physical world the simulated workers measure — in a live deployment
    /// that slice is reality itself; everything downstream of the campaign
    /// only sees the workers' noisy answers.
    pub fn answer_query(
        &self,
        query: &SpeedQuery,
        pool: &WorkerPool,
        costs: &[u32],
        true_speeds: &[f64],
        config: &OnlineConfig,
    ) -> QueryAnswer {
        self.answer_query_warm(query, pool, costs, true_speeds, config, None)
    }

    /// [`answer_query`](Self::answer_query) with warm-start context: when
    /// `config.delta` allows it and `prev` holds the previous round of
    /// the **same slot**, the GSP step re-propagates incrementally from
    /// that fixed point instead of sweeping cold (see
    /// [`rtse_gsp::propagate_delta_observed`]). Falls back to the full
    /// cold propagation when `prev` is absent, its length disagrees with
    /// the network, or the policy is [`DeltaPolicy::Full`].
    pub fn answer_query_warm(
        &self,
        query: &SpeedQuery,
        pool: &WorkerPool,
        costs: &[u32],
        true_speeds: &[f64],
        config: &OnlineConfig,
        prev: Option<PrevRound<'_>>,
    ) -> QueryAnswer {
        assert_eq!(costs.len(), self.graph.num_roads(), "costs length mismatch");
        assert_eq!(true_speeds.len(), self.graph.num_roads(), "truth length mismatch");
        let params = self.offline.model().slot(query.slot);
        let corr = self.offline.corr_table(self.graph, query.slot);
        let candidates = pool.covered_roads();

        // Step 1: OCS.
        let instance = OcsInstance {
            sigma: &params.sigma,
            corr: corr.as_ref(),
            queried: &query.roads,
            candidates: &candidates,
            costs,
            budget: config.budget,
            theta: config.theta,
        };
        // The lazy solvers produce selections identical to Algs. 2-4
        // (property-tested) with far fewer marginal-gain evaluations.
        let (selection, selection_time) = rtse_eval::time_it(|| {
            observed_select(&self.obs, || match config.strategy {
                SelectionStrategy::Hybrid => lazy_hybrid_greedy(&instance),
                SelectionStrategy::Ratio => lazy_ratio_greedy(&instance),
                SelectionStrategy::Objective => lazy_objective_greedy(&instance),
                SelectionStrategy::Random(seed) => random_select(&instance, seed),
            })
        });

        // Step 2: crowdsourcing.
        let outcome = config.campaign.run(pool, &selection.roads, costs, true_speeds);

        // Step 3: GSP — incremental from the previous round when the
        // policy allows and a dimension-compatible seed exists, full cold
        // propagation otherwise.
        let seed = match (config.delta, prev) {
            (DeltaPolicy::Delta { epsilon }, Some(prev))
                if prev.values.len() == self.graph.num_roads() =>
            {
                Some((epsilon, prev))
            }
            _ => None,
        };
        let (result, propagation_time) = rtse_eval::time_it(|| match seed {
            Some((epsilon, prev)) => {
                // Roads whose observation was removed since the previous
                // round: the stored value still equals the stale reading,
                // so only this hint makes their neighborhood dirty.
                let changed: Vec<RoadId> = prev
                    .observations
                    .iter()
                    .map(|&(r, _)| r)
                    .filter(|&r| !outcome.observations.iter().any(|&(r2, _)| r2 == r))
                    .collect();
                let solver = DeltaGsp { base: config.gsp, epsilon };
                propagate_delta_observed(
                    &solver,
                    self.graph,
                    params,
                    &outcome.observations,
                    prev.values,
                    &changed,
                    &self.obs,
                )
                .result
            }
            None => {
                config.gsp.propagate_observed(self.graph, params, &outcome.observations, &self.obs)
            }
        });

        let estimates = query.roads.iter().map(|&r| result.values[r.index()]).collect();
        QueryAnswer {
            estimates,
            all_values: result.values,
            selection,
            observations: outcome.observations,
            paid: outcome.paid,
            selection_time,
            propagation_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SpeedQuery;
    use rtse_crowd::{uniform_costs, CostRange};
    use rtse_data::{SlotOfDay, SynthConfig, TrafficGenerator};
    use rtse_eval::ErrorReport;
    use rtse_graph::generators::grid;
    use rtse_graph::RoadId;

    struct World {
        graph: Graph,
        dataset: rtse_data::SynthDataset,
        costs: Vec<u32>,
    }

    fn world(seed: u64) -> World {
        let graph = grid(4, 5);
        let cfg = SynthConfig { days: 20, seed, ..SynthConfig::default() };
        let dataset = TrafficGenerator::new(&graph, cfg).generate();
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
        World { graph, dataset, costs }
    }

    fn engine(w: &World) -> CrowdRtse<'_> {
        // Moment estimation: the trainer's CCD refinement is covered by
        // `offline::tests` and the rtf crate; these tests exercise the
        // online pipeline.
        let offline =
            OfflineArtifacts::from_model(rtse_rtf::moment_estimate(&w.graph, &w.dataset.history));
        CrowdRtse::new(&w.graph, offline)
    }

    #[test]
    fn end_to_end_answers_query() {
        let w = world(31);
        let e = engine(&w);
        let slot = SlotOfDay::from_hm(8, 30);
        let query = SpeedQuery::new((0u32..10).map(RoadId).collect(), slot);
        let pool = WorkerPool::spawn(&w.graph, 40, 0.5, (0.3, 1.0), 7);
        let truth = w.dataset.ground_truth_snapshot(slot);
        let answer = e.answer_query(&query, &pool, &w.costs, truth, &OnlineConfig::default());
        assert_eq!(answer.estimates.len(), 10);
        assert!(answer.estimates.iter().all(|v| v.is_finite() && *v > 0.0));
        assert!(answer.selection.spent <= 30);
        assert!(answer.paid >= answer.selection.spent || answer.paid == 0);
    }

    #[test]
    fn engine_beats_periodic_baseline_under_incident() {
        // With a strong incident on the queried roads and workers
        // everywhere, the crowdsourced estimate must beat pure periodicity.
        let graph = grid(4, 5);
        let cfg = SynthConfig {
            days: 20,
            seed: 77,
            incidents_per_day: 3.0,
            severity_range: (0.5, 0.7),
            duration_range: (30, 60),
            ..SynthConfig::default()
        };
        let dataset = TrafficGenerator::new(&graph, cfg).generate();
        let costs = vec![1u32; graph.num_roads()];
        let offline =
            OfflineArtifacts::from_model(rtse_rtf::moment_estimate(&graph, &dataset.history));
        let engine = CrowdRtse::new(&graph, offline);

        // Pick a slot mid-incident.
        let inc = &dataset.today_incidents[0];
        let slot = SlotOfDay((inc.start.index() + inc.duration_slots / 2).min(287) as u16);
        let queried: Vec<RoadId> = graph.road_ids().collect();
        let query = SpeedQuery::new(queried.clone(), slot);
        let pool = WorkerPool::spawn(&graph, 60, 0.3, (0.2, 0.8), 3);
        let truth = dataset.ground_truth_snapshot(slot);
        let config = OnlineConfig { budget: 10, ..Default::default() };
        let answer = engine.answer_query(&query, &pool, &costs, truth, &config);

        let crowd_report = ErrorReport::evaluate_default(&answer.all_values, truth, &queried);
        let periodic = engine.offline().model().slot(slot).mu.clone();
        let per_report = ErrorReport::evaluate_default(&periodic, truth, &queried);
        assert!(
            crowd_report.mape <= per_report.mape + 1e-9,
            "CrowdRTSE MAPE {} should not exceed Per {}",
            crowd_report.mape,
            per_report.mape
        );
    }

    #[test]
    fn strategies_all_produce_feasible_answers() {
        let w = world(41);
        let e = engine(&w);
        let slot = SlotOfDay::from_hm(18, 0);
        let query = SpeedQuery::new((5u32..15).map(RoadId).collect(), slot);
        let pool = WorkerPool::spawn(&w.graph, 30, 0.5, (0.3, 1.0), 9);
        let truth = w.dataset.ground_truth_snapshot(slot);
        for strategy in [
            SelectionStrategy::Hybrid,
            SelectionStrategy::Ratio,
            SelectionStrategy::Objective,
            SelectionStrategy::Random(5),
        ] {
            let config = OnlineConfig { strategy, budget: 12, ..Default::default() };
            let answer = e.answer_query(&query, &pool, &w.costs, truth, &config);
            assert!(answer.selection.spent <= 12, "{strategy:?} overspent");
            assert!(answer.estimates.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn zero_budget_degrades_to_periodic() {
        let w = world(51);
        let e = engine(&w);
        let slot = SlotOfDay::from_hm(12, 0);
        let query = SpeedQuery::new(vec![RoadId(0), RoadId(7)], slot);
        let pool = WorkerPool::spawn(&w.graph, 10, 0.5, (0.3, 1.0), 1);
        let truth = w.dataset.ground_truth_snapshot(slot);
        let config = OnlineConfig { budget: 0, ..Default::default() };
        let answer = e.answer_query(&query, &pool, &w.costs, truth, &config);
        let mu = &e.offline().model().slot(slot).mu;
        assert_eq!(answer.estimates[0], mu[0]);
        assert_eq!(answer.estimates[1], mu[7]);
        assert_eq!(answer.paid, 0);
    }

    #[test]
    fn empty_worker_pool_degrades_to_periodic() {
        let w = world(61);
        let e = engine(&w);
        let slot = SlotOfDay::from_hm(7, 0);
        let query = SpeedQuery::new(vec![RoadId(3)], slot);
        let pool = WorkerPool::spawn(&w.graph, 1, 0.0, (0.1, 0.2), 1);
        // Shrink the pool to zero coverage by querying a fresh pool with no
        // workers: spawn requires ≥0; emulate by moving the single worker's
        // answers out of selection via zero candidates — use an empty pool.
        let empty = WorkerPool::spawn(&w.graph, 0, 0.0, (0.1, 0.2), 1);
        let truth = w.dataset.ground_truth_snapshot(slot);
        let answer = e.answer_query(&query, &empty, &w.costs, truth, &OnlineConfig::default());
        assert_eq!(answer.estimates[0], e.offline().model().mu(slot, RoadId(3)));
        let _ = pool;
    }
}
