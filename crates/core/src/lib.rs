//! CrowdRTSE — the framework engine (Fig. 1 of the paper).
//!
//! Ties the substrates together into the paper's hybrid offline/online
//! architecture:
//!
//! * **Offline** ([`offline`]): train the RTF from historical records and
//!   precompute/caches the per-slot correlation tables `Γ`.
//! * **Online** ([`engine`]): answer a [`SpeedQuery`] in three steps —
//!   OCS selects the crowdsourced roads from the worker-covered set,
//!   the crowd campaign probes them, and GSP propagates the probes over
//!   the network.
//!
//! [`estimator`] adapts GSP to the [`rtse_baselines::Estimator`] interface
//! so the evaluation harness can sweep GSP/LASSO/GRMC/Per uniformly.

pub mod active;
pub mod allocator;
pub mod engine;
pub mod estimator;
pub mod offline;
pub mod query;
pub mod session;

pub use active::{posterior_stds, variance_aware_select};
pub use allocator::{merge_queries, plan_daily_budget};
pub use engine::{CrowdRtse, DeltaPolicy, OnlineConfig, PrevRound, SelectionStrategy};
pub use estimator::GspEstimator;
pub use offline::{CorrSubstrate, OfflineArtifacts};
pub use query::{QueryAnswer, QueryError, SpeedQuery};
pub use session::{MonitoringSession, RoundReport, StepError};
