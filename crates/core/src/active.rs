//! Variance-aware (active-learning) road selection — an extension beyond
//! the paper's Eq. (13) heuristic.
//!
//! OCS scores a candidate by its σ-weighted path correlation to the
//! queried roads, a *static* proxy for how much a probe would help. The
//! GMRF gives the real quantity directly: the **posterior variance** of
//! each queried road given the probes selected so far (a Gaussian's
//! covariance depends only on *which* coordinates are observed, not on
//! the observed values, so it can be evaluated before buying anything).
//!
//! [`variance_aware_select`] runs a greedy loop: at each step it computes
//! the queried roads' current posterior standard deviations (exact, via
//! one conjugate-gradient solve per queried road) and picks the feasible
//! candidate with the best `Σ_q σ_q · corr(q, c) · std_q` per unit cost —
//! the paper's own score re-weighted by *live* uncertainty, so candidates
//! near already-well-pinned queried roads stop attracting budget.

use rtse_data::SlotOfDay;
use rtse_graph::{Graph, RoadId};
use rtse_math::conjugate_gradient;
use rtse_ocs::{OcsInstance, Selection, SelectionState};
use rtse_rtf::params::SlotParams;
use rtse_rtf::RtfModel;

/// Posterior standard deviation of each road in `targets`, given that
/// `observed` roads will be probed (values irrelevant — Gaussian
/// covariance is value-free). Exact, one CG solve per target.
pub fn posterior_stds(
    graph: &Graph,
    params: &SlotParams,
    observed: &[RoadId],
    targets: &[RoadId],
) -> Vec<f64> {
    let dummy: Vec<(RoadId, f64)> = observed.iter().map(|&r| (r, 0.0)).collect();
    let system = rtse_gsp::exact::ConditionalSystem::build(graph, params, &dummy);
    targets
        .iter()
        .map(|&t| match system.row_of(t) {
            None => 0.0, // observed: no remaining uncertainty
            Some(row) => {
                let m = system.dim();
                let mut e = vec![0.0; m];
                e[row] = 1.0;
                let sol = conjugate_gradient(system.matrix(), &e, 1e-10, 10 * m + 100);
                // Posterior precision is 2A (see gsp::exact), so
                // Var = (A⁻¹)_tt / 2.
                (sol.x[row] / 2.0).max(0.0).sqrt()
            }
        })
        .collect()
}

/// Greedy uncertainty-driven selection under the same feasibility rules as
/// OCS (budget, `R^c ⊆ R^w`, pairwise redundancy ≤ θ).
///
/// `refresh_every` controls how often the (exact but not free) posterior
/// stds are recomputed: 1 = every pick, `usize::MAX` = once up front.
pub fn variance_aware_select(
    graph: &Graph,
    model: &RtfModel,
    slot: SlotOfDay,
    inst: &OcsInstance<'_>,
    refresh_every: usize,
) -> Selection {
    inst.validate();
    assert!(refresh_every > 0, "refresh_every must be positive");
    let params = model.slot(slot);
    let mut state = SelectionState::new(inst);
    let mut stds = posterior_stds(graph, params, state.chosen(), inst.queried);
    let mut picks_since_refresh = 0usize;
    loop {
        if picks_since_refresh >= refresh_every {
            stds = posterior_stds(graph, params, state.chosen(), inst.queried);
            picks_since_refresh = 0;
        }
        let mut best: Option<(f64, RoadId)> = None;
        for &c in inst.candidates {
            if !state.is_feasible_addition(c) {
                continue;
            }
            let score: f64 = inst
                .queried
                .iter()
                .zip(stds.iter())
                .map(|(&q, &sd)| inst.sigma[q.index()] * inst.corr.corr(q, c) * sd)
                .sum::<f64>()
                / inst.cost(c) as f64;
            let better = match best {
                None => true,
                Some((bs, br)) => score > bs || (score == bs && c < br),
            };
            if better {
                best = Some((score, c));
            }
        }
        match best {
            Some((score, c)) if score > 0.0 => {
                state.add(c);
                picks_since_refresh += 1;
            }
            _ => break,
        }
    }
    state.into_selection()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_crowd::{uniform_costs, CostRange};
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;
    use rtse_rtf::{moment_estimate, CorrelationTable, PathCorrelation};

    struct World {
        graph: Graph,
        model: RtfModel,
        corr: CorrelationTable,
        costs: Vec<u32>,
        slot: SlotOfDay,
    }

    fn world() -> World {
        let graph = grid(4, 5);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 12, seed: 5, ..SynthConfig::default() },
        )
        .generate();
        let model = moment_estimate(&graph, &ds.history);
        let slot = SlotOfDay::from_hm(8, 30);
        let corr = CorrelationTable::build(&graph, &model, slot, PathCorrelation::MaxProduct);
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, 5);
        World { graph, model, corr, costs, slot }
    }

    #[test]
    fn posterior_std_zero_for_observed_and_shrinks_with_probes() {
        let w = world();
        let params = w.model.slot(w.slot);
        let targets: Vec<RoadId> = w.graph.road_ids().collect();
        let before = posterior_stds(&w.graph, params, &[], &targets);
        let probes = [RoadId(7), RoadId(12)];
        let after = posterior_stds(&w.graph, params, &probes, &targets);
        assert_eq!(after[7], 0.0);
        assert_eq!(after[12], 0.0);
        for r in w.graph.road_ids() {
            assert!(
                after[r.index()] <= before[r.index()] + 1e-9,
                "probing can only reduce variance: road {r}"
            );
        }
        // Neighbors of the probes shrink strictly.
        let (nbr, _) = w.graph.neighbors(RoadId(7))[0];
        assert!(after[nbr.index()] < before[nbr.index()]);
    }

    #[test]
    fn selection_is_feasible_and_respects_budget() {
        let w = world();
        let queried: Vec<RoadId> = (0u32..10).map(RoadId).collect();
        let candidates: Vec<RoadId> = w.graph.road_ids().collect();
        let params = w.model.slot(w.slot);
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &w.corr,
            queried: &queried,
            candidates: &candidates,
            costs: &w.costs,
            budget: 12,
            theta: 0.92,
        };
        let sel = variance_aware_select(&w.graph, &w.model, w.slot, &inst, 1);
        assert!(sel.is_feasible(&inst));
        assert!(sel.spent <= 12);
        assert!(!sel.roads.is_empty());
    }

    #[test]
    fn reduces_queried_uncertainty_at_least_as_well_as_random() {
        let w = world();
        let queried: Vec<RoadId> = (3u32..15).map(RoadId).collect();
        let candidates: Vec<RoadId> = w.graph.road_ids().collect();
        let params = w.model.slot(w.slot);
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &w.corr,
            queried: &queried,
            candidates: &candidates,
            costs: &w.costs,
            budget: 10,
            theta: 1.0,
        };
        let active = variance_aware_select(&w.graph, &w.model, w.slot, &inst, 1);
        let total_std = |sel: &Selection| -> f64 {
            posterior_stds(&w.graph, params, &sel.roads, &queried).iter().sum()
        };
        let active_std = total_std(&active);
        let random_avg: f64 =
            (0..5).map(|s| total_std(&rtse_ocs::random_select(&inst, s))).sum::<f64>() / 5.0;
        assert!(
            active_std <= random_avg + 1e-9,
            "active {active_std} should beat random avg {random_avg}"
        );
    }

    #[test]
    fn refresh_interval_one_no_worse_than_never() {
        let w = world();
        let queried: Vec<RoadId> = (0u32..8).map(RoadId).collect();
        let candidates: Vec<RoadId> = w.graph.road_ids().collect();
        let params = w.model.slot(w.slot);
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &w.corr,
            queried: &queried,
            candidates: &candidates,
            costs: &w.costs,
            budget: 8,
            theta: 1.0,
        };
        let fresh = variance_aware_select(&w.graph, &w.model, w.slot, &inst, 1);
        let stale = variance_aware_select(&w.graph, &w.model, w.slot, &inst, usize::MAX);
        let total = |sel: &Selection| -> f64 {
            posterior_stds(&w.graph, params, &sel.roads, &queried).iter().sum()
        };
        assert!(total(&fresh) <= total(&stale) + 0.05, "{} vs {}", total(&fresh), total(&stale));
    }
}
