//! Offline stage: RTF training and correlation-table caching.

use rtse_data::{HistoryStore, SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::Graph;
use rtse_obs::ObsHandle;
use rtse_pool::ComputePool;
use rtse_rtf::{
    CorrTable, CorrelationTable, PathCorrelation, RtfModel, RtfTrainer, SparseCorrConfig,
    SparseCorrelationTable,
};
use rtse_sync::{Arc, OnceLock};

/// Which Γ substrate the offline stage materializes per slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CorrSubstrate {
    /// Dense all-pairs table — exact for both [`PathCorrelation`]
    /// semantics, O(n²) memory. The default, matching the paper.
    #[default]
    Dense,
    /// Floor/top-k pruned CSR table — city-scale memory, `MaxProduct`
    /// only. When the ablation `ReciprocalSum` semantics is selected the
    /// engine falls back to the dense build (the reciprocal transform has
    /// no sound pruning bound; see `rtse_rtf::sparse_corr`).
    Sparse(SparseCorrConfig),
}

/// Everything the online stage needs from the offline stage.
///
/// The paper computes the full `Γ_R` for every slot offline; at 607 roads
/// × 288 slots that is ~100 GB of doubles, so (like any real deployment
/// would) the table is materialized lazily per slot and cached — the
/// computation is identical, only the schedule differs.
pub struct OfflineArtifacts {
    model: RtfModel,
    semantics: PathCorrelation,
    substrate: CorrSubstrate,
    obs: ObsHandle,
    /// One lazily-initialized entry per slot of the day. A cold build
    /// blocks only callers of *that* slot (warm slots stay lock-free and
    /// wait-free), and concurrent cold callers coalesce into a single
    /// build. The previous design held one map-wide mutex across the whole
    /// `CorrelationTable::build`, so a cold slot head-of-line blocked every
    /// other slot's read for the duration of `|R|` Dijkstras.
    corr_cache: Vec<OnceLock<Arc<CorrTable>>>,
}

fn fresh_cache() -> Vec<OnceLock<Arc<CorrTable>>> {
    (0..SLOTS_PER_DAY).map(|_| OnceLock::new()).collect()
}

impl OfflineArtifacts {
    /// Runs the offline stage: trains the RTF with `trainer` on `history`.
    pub fn train(graph: &Graph, history: &HistoryStore, trainer: &RtfTrainer) -> Self {
        let (model, _stats) = trainer.train(graph, history);
        Self::from_model(model)
    }

    /// Wraps an already-trained (or loaded) model.
    pub fn from_model(model: RtfModel) -> Self {
        Self {
            model,
            semantics: PathCorrelation::MaxProduct,
            substrate: CorrSubstrate::Dense,
            obs: ObsHandle::noop(),
            corr_cache: fresh_cache(),
        }
    }

    /// Overrides the path-correlation semantics (ablation use). Clears the
    /// cache.
    pub fn with_semantics(mut self, semantics: PathCorrelation) -> Self {
        self.semantics = semantics;
        self.corr_cache = fresh_cache();
        self
    }

    /// Selects the Γ substrate materialized per slot (default
    /// [`CorrSubstrate::Dense`]). Clears the cache so previously-built
    /// tables of the other substrate cannot be served.
    pub fn with_substrate(mut self, substrate: CorrSubstrate) -> Self {
        self.substrate = substrate;
        self.corr_cache = fresh_cache();
        self
    }

    /// The configured Γ substrate.
    pub fn substrate(&self) -> CorrSubstrate {
        self.substrate
    }

    /// Routes lazy correlation-table builds through `obs` (one
    /// `corr.dijkstra_row` span per road). Cached tables built before the
    /// swap keep whatever instrumentation they were built under; the cache
    /// is deliberately left intact so the swap is cheap.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Builder form of [`Self::set_obs`].
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The trained model.
    pub fn model(&self) -> &RtfModel {
        &self.model
    }

    /// The correlation table for a slot, building it on first use.
    ///
    /// Per-slot once-initialization: a warm slot returns immediately even
    /// while another slot's table is mid-build, and duplicate concurrent
    /// builds of the same cold slot coalesce (exactly one build runs; the
    /// rest block on it and share the resulting `Arc`).
    pub fn corr_table(&self, graph: &Graph, slot: SlotOfDay) -> Arc<CorrTable> {
        self.corr_entry(slot, || match self.substrate {
            CorrSubstrate::Sparse(config) if self.semantics == PathCorrelation::MaxProduct => {
                CorrTable::Sparse(SparseCorrelationTable::build_observed(
                    graph,
                    &self.model,
                    slot,
                    config,
                    &ComputePool::from_env(),
                    &self.obs,
                ))
            }
            // Dense, or the ReciprocalSum ablation (no sound sparse bound).
            _ => CorrTable::Dense(CorrelationTable::build_observed(
                graph,
                &self.model,
                slot,
                self.semantics,
                &ComputePool::from_env(),
                &self.obs,
            )),
        })
    }

    /// Per-slot get-or-init, separated from [`Self::corr_table`] so tests
    /// can drive the initialization with an instrumented build closure.
    fn corr_entry(&self, slot: SlotOfDay, build: impl FnOnce() -> CorrTable) -> Arc<CorrTable> {
        self.corr_cache[slot.index()].get_or_init(|| Arc::new(build())).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    fn small_artifacts(seed: u64) -> (Graph, OfflineArtifacts) {
        let g = grid(3, 3);
        let cfg = SynthConfig { days: 8, seed, ..SynthConfig::small_test() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let artifacts = OfflineArtifacts::train(&g, &ds.history, &RtfTrainer::default());
        (g, artifacts)
    }

    #[test]
    fn train_and_cache() {
        let (g, artifacts) = small_artifacts(1);
        assert!(artifacts.model().matches_graph(&g));
        let slot = SlotOfDay::from_hm(9, 0);
        let t1 = artifacts.corr_table(&g, slot);
        let t2 = artifacts.corr_table(&g, slot);
        // Same Arc returned from the cache.
        assert!(Arc::ptr_eq(&t1, &t2));
        let t3 = artifacts.corr_table(&g, SlotOfDay::from_hm(10, 0));
        assert!(!Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn semantics_override_rebuilds() {
        let g = grid(2, 3);
        let cfg = SynthConfig { days: 6, seed: 2, ..SynthConfig::small_test() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let artifacts = OfflineArtifacts::train(&g, &ds.history, &RtfTrainer::default())
            .with_semantics(PathCorrelation::ReciprocalSum);
        let slot = SlotOfDay(0);
        let t = artifacts.corr_table(&g, slot);
        assert_eq!(t.semantics(), PathCorrelation::ReciprocalSum);
    }

    #[test]
    fn sparse_substrate_builds_sparse_tables_and_matches_dense() {
        let (g, artifacts) = small_artifacts(7);
        let slot = SlotOfDay::from_hm(9, 0);
        let config = SparseCorrConfig { floor: 0.01, top_k: None };
        let dense = artifacts.corr_table(&g, slot);
        let artifacts = artifacts.with_substrate(CorrSubstrate::Sparse(config));
        let sparse = artifacts.corr_table(&g, slot);
        assert!(matches!(dense.as_ref(), CorrTable::Dense(_)));
        assert!(matches!(sparse.as_ref(), CorrTable::Sparse(_)));
        for a in g.road_ids() {
            for b in g.road_ids() {
                let d = dense.corr(a, b);
                if d >= config.floor {
                    assert_eq!(d.to_bits(), sparse.corr(a, b).to_bits(), "corr({a},{b})");
                }
            }
        }
    }

    #[test]
    fn reciprocal_sum_ablation_falls_back_to_dense() {
        let (g, artifacts) = small_artifacts(8);
        let artifacts = artifacts
            .with_substrate(CorrSubstrate::Sparse(SparseCorrConfig::default()))
            .with_semantics(PathCorrelation::ReciprocalSum);
        let t = artifacts.corr_table(&g, SlotOfDay(0));
        assert!(matches!(t.as_ref(), CorrTable::Dense(_)), "no sound sparse bound for 1/ρ");
        assert_eq!(t.semantics(), PathCorrelation::ReciprocalSum);
    }

    /// Regression test for the head-of-line blocking bug: a warm-slot read
    /// must complete while a cold-slot build is still in flight. Under the
    /// old map-wide mutex the cold build held the lock, so the warm read
    /// below would deadlock (the cold build only finishes after the warm
    /// read signals it) and the test would hang.
    #[test]
    fn warm_read_completes_during_cold_build() {
        let (g, artifacts) = small_artifacts(3);
        let warm = SlotOfDay(10);
        let cold = SlotOfDay(20);
        let warm_table = artifacts.corr_table(&g, warm);

        let build_started = Barrier::new(2);
        let warm_read_done = Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                artifacts.corr_entry(cold, || {
                    build_started.wait();
                    // Hold the cold slot "mid-build" until the main thread
                    // has proven it can read the warm slot.
                    warm_read_done.wait();
                    CorrelationTable::build(
                        &g,
                        artifacts.model(),
                        cold,
                        PathCorrelation::MaxProduct,
                    )
                    .into()
                });
            });
            build_started.wait();
            let again = artifacts.corr_table(&g, warm);
            assert!(Arc::ptr_eq(&warm_table, &again));
            warm_read_done.wait();
        });
        // The cold build completed and is now cached.
        let cold_table = artifacts.corr_table(&g, cold);
        assert_eq!(cold_table.slot(), cold);
    }

    /// Duplicate concurrent builds of the same cold slot coalesce: exactly
    /// one build closure runs and every caller shares the resulting Arc.
    #[test]
    fn concurrent_cold_builds_coalesce() {
        let (g, artifacts) = small_artifacts(4);
        let slot = SlotOfDay(42);
        let builds = AtomicUsize::new(0);
        let racers = 4;
        let start = Barrier::new(racers);
        let tables: Vec<Arc<CorrTable>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..racers)
                .map(|_| {
                    scope.spawn(|| {
                        start.wait();
                        artifacts.corr_entry(slot, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so late arrivals hit the
                            // in-flight path rather than the warm path.
                            std::thread::sleep(Duration::from_millis(20));
                            CorrelationTable::build(
                                &g,
                                artifacts.model(),
                                slot,
                                PathCorrelation::MaxProduct,
                            )
                            .into()
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "duplicate builds must coalesce");
        for t in &tables[1..] {
            assert!(Arc::ptr_eq(&tables[0], t));
        }
    }
}
