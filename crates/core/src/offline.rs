//! Offline stage: RTF training and correlation-table caching.

use rtse_data::{HistoryStore, SlotOfDay};
use rtse_graph::Graph;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfModel, RtfTrainer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Everything the online stage needs from the offline stage.
///
/// The paper computes the full `Γ_R` for every slot offline; at 607 roads
/// × 288 slots that is ~100 GB of doubles, so (like any real deployment
/// would) the table is materialized lazily per slot and cached — the
/// computation is identical, only the schedule differs.
pub struct OfflineArtifacts {
    model: RtfModel,
    semantics: PathCorrelation,
    corr_cache: Mutex<HashMap<u16, Arc<CorrelationTable>>>,
}

impl OfflineArtifacts {
    /// Runs the offline stage: trains the RTF with `trainer` on `history`.
    pub fn train(graph: &Graph, history: &HistoryStore, trainer: &RtfTrainer) -> Self {
        let (model, _stats) = trainer.train(graph, history);
        Self::from_model(model)
    }

    /// Wraps an already-trained (or loaded) model.
    pub fn from_model(model: RtfModel) -> Self {
        Self {
            model,
            semantics: PathCorrelation::MaxProduct,
            corr_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the path-correlation semantics (ablation use). Clears the
    /// cache.
    pub fn with_semantics(mut self, semantics: PathCorrelation) -> Self {
        self.semantics = semantics;
        self.corr_cache.get_mut().unwrap_or_else(PoisonError::into_inner).clear();
        self
    }

    /// The trained model.
    pub fn model(&self) -> &RtfModel {
        &self.model
    }

    /// The correlation table for a slot, building it on first use.
    pub fn corr_table(&self, graph: &Graph, slot: SlotOfDay) -> Arc<CorrelationTable> {
        let mut cache = self.corr_cache.lock().unwrap_or_else(PoisonError::into_inner);
        cache
            .entry(slot.0)
            .or_insert_with(|| {
                Arc::new(CorrelationTable::build(graph, &self.model, slot, self.semantics))
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;

    #[test]
    fn train_and_cache() {
        let g = grid(3, 3);
        let cfg = SynthConfig { days: 8, seed: 1, ..SynthConfig::small_test() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let artifacts = OfflineArtifacts::train(&g, &ds.history, &RtfTrainer::default());
        assert!(artifacts.model().matches_graph(&g));
        let slot = SlotOfDay::from_hm(9, 0);
        let t1 = artifacts.corr_table(&g, slot);
        let t2 = artifacts.corr_table(&g, slot);
        // Same Arc returned from the cache.
        assert!(Arc::ptr_eq(&t1, &t2));
        let t3 = artifacts.corr_table(&g, SlotOfDay::from_hm(10, 0));
        assert!(!Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn semantics_override_rebuilds() {
        let g = grid(2, 3);
        let cfg = SynthConfig { days: 6, seed: 2, ..SynthConfig::small_test() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let artifacts = OfflineArtifacts::train(&g, &ds.history, &RtfTrainer::default())
            .with_semantics(PathCorrelation::ReciprocalSum);
        let slot = SlotOfDay(0);
        let t = artifacts.corr_table(&g, slot);
        assert_eq!(t.semantics(), PathCorrelation::ReciprocalSum);
    }
}
