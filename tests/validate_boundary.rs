//! Corruption-injection tests for the `validate` feature: a poisoned RTF
//! model (negative σ, ρ > 1, non-finite μ) must be rejected fail-closed at
//! the engine boundary, while a clean model passes.
//!
//! Compiled only with `cargo test --features validate`; without the
//! feature the engine checks dimensions alone and these guarantees do not
//! apply.
#![cfg(feature = "validate")]

use crowd_rtse::check::Validate;
use crowd_rtse::core::{CrowdRtse, OfflineArtifacts};
use crowd_rtse::data::SlotOfDay;
use crowd_rtse::graph::generators::grid;
use crowd_rtse::rtf::RtfModel;

#[test]
fn clean_model_accepted() {
    let g = grid(3, 3);
    let model = RtfModel::neutral(&g);
    assert!(model.validate().is_ok());
    assert!(CrowdRtse::try_new(&g, OfflineArtifacts::from_model(model)).is_ok());
}

#[test]
fn negative_sigma_rejected_at_engine_boundary() {
    let g = grid(3, 3);
    let mut model = RtfModel::neutral(&g);
    model.slot_mut(SlotOfDay(17)).sigma[2] = -0.5;
    let err = CrowdRtse::try_new(&g, OfflineArtifacts::from_model(model))
        .err()
        .expect("poisoned σ must be rejected");
    assert_eq!(err.invariant, "rtf.sigma_positive");
    assert!(err.detail.contains("slot 17"), "detail should name the slot: {}", err.detail);
}

#[test]
fn rho_above_one_rejected_at_engine_boundary() {
    let g = grid(3, 3);
    let mut model = RtfModel::neutral(&g);
    model.slot_mut(SlotOfDay(0)).rho[0] = 1.5;
    let err = CrowdRtse::try_new(&g, OfflineArtifacts::from_model(model))
        .err()
        .expect("ρ > 1 must be rejected");
    assert_eq!(err.invariant, "rtf.rho_range");
}

#[test]
fn nan_mu_rejected_at_engine_boundary() {
    let g = grid(3, 3);
    let mut model = RtfModel::neutral(&g);
    model.slot_mut(SlotOfDay(100)).mu[0] = f64::NAN;
    let err = CrowdRtse::try_new(&g, OfflineArtifacts::from_model(model))
        .err()
        .expect("NaN μ must be rejected");
    assert_eq!(err.invariant, "rtf.mu_finite");
}

#[test]
fn dimension_mismatch_rejected_before_contract_checks() {
    let g = grid(3, 3);
    let other = grid(4, 4);
    let model = RtfModel::neutral(&other);
    let err = CrowdRtse::try_new(&g, OfflineArtifacts::from_model(model))
        .err()
        .expect("mismatched dimensions must be rejected");
    assert_eq!(err.invariant, "engine.model_matches_graph");
}

#[test]
#[should_panic(expected = "rtf.sigma_positive")]
fn infallible_constructor_fails_closed() {
    let g = grid(3, 3);
    let mut model = RtfModel::neutral(&g);
    model.slot_mut(SlotOfDay(0)).sigma[0] = -1.0;
    let _ = CrowdRtse::new(&g, OfflineArtifacts::from_model(model));
}
