//! Model persistence across the crate boundary: a trained model survives a
//! JSON round trip and drives identical answers.

use crowd_rtse::prelude::*;
use crowd_rtse::rtf::persistence::{load_model, save_model};

#[test]
fn saved_model_answers_identically() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(60, 99);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 8, seed: 99, ..SynthConfig::default() })
            .generate();
    let model = moment_estimate(&graph, &dataset.history);

    let dir = std::env::temp_dir().join("crowd_rtse_it_persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    save_model(&model, &path).unwrap();
    let loaded = load_model(&path).unwrap();
    assert_eq!(model, loaded);

    let answer_with = |m: RtfModel| {
        let engine = CrowdRtse::new(&graph, OfflineArtifacts::from_model(m));
        let slot = SlotOfDay::from_hm(12, 0);
        let truth = dataset.ground_truth_snapshot(slot);
        let query = SpeedQuery::new((0u32..15).map(RoadId).collect(), slot);
        let pool = WorkerPool::spawn(&graph, 40, 0.5, (0.3, 1.2), 1);
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, 1);
        engine.answer_query(&query, &pool, &costs, truth, &OnlineConfig::default()).all_values
    };
    assert_eq!(answer_with(model), answer_with(loaded));
    std::fs::remove_file(&path).ok();
}

#[test]
fn history_csv_round_trip_preserves_training() {
    use crowd_rtse::data::io::{read_records, write_records};

    let graph = crowd_rtse::graph::generators::grid(3, 4);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 3, seed: 5, ..SynthConfig::small_test() },
    )
    .generate();

    let mut buf = Vec::new();
    write_records(&mut buf, dataset.history.records()).unwrap();
    let records = read_records(buf.as_slice()).unwrap();
    let mut rebuilt = HistoryStore::new(graph.num_roads(), dataset.history.num_days());
    for rec in &records {
        rebuilt.insert(rec);
    }
    assert_eq!(rebuilt.num_records(), dataset.history.num_records());

    let a = moment_estimate(&graph, &dataset.history);
    let b = moment_estimate(&graph, &rebuilt);
    assert_eq!(a, b, "training on round-tripped records must be identical");
}
