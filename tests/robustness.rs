//! Robustness integration tests: adversarial workers, topology variety,
//! and continuous-session behaviour across crate boundaries.

use crowd_rtse::crowd::{corrupt_answers, AggregationRule, Corruption, CrowdCampaign};
use crowd_rtse::prelude::*;

#[test]
fn median_aggregation_protects_pipeline_from_spammers() {
    let graph = crowd_rtse::graph::generators::grid(4, 5);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 10, seed: 21, ..SynthConfig::default() })
            .generate();
    let slot = SlotOfDay::from_hm(9, 0);
    let truth = dataset.ground_truth_snapshot(slot);
    let pool = WorkerPool::spawn(&graph, 80, 0.3, (0.2, 0.6), 4);
    let selection = pool.covered_roads();
    // Plenty of answers per road: with 15 answers and 25% corruption the
    // per-road median flips only when >= 8 of 15 draws are corrupted
    // (~1.7% per road), so the median-vs-mean gap is structural, not seed
    // luck.
    let costs = vec![15u32; graph.num_roads()];

    // Collect raw answers once, then corrupt a copy.
    let campaign = CrowdCampaign { rule: AggregationRule::Mean, seed: 5, ..Default::default() };
    let honest = campaign.run(&pool, &selection, &costs, truth);
    let mut corrupted = honest.answers.clone();
    corrupt_answers(&mut corrupted, 0.25, Corruption::Constant(180.0), 6);

    // Aggregate per road under both rules.
    let reaggregate = |rule| -> Vec<(RoadId, f64)> {
        selection
            .iter()
            .filter_map(|&road| {
                let road_answers: Vec<_> =
                    corrupted.iter().filter(|a| a.road == road).cloned().collect();
                crowd_rtse::crowd::aggregate_answers(&road_answers, rule).map(|speed| (road, speed))
            })
            .collect()
    };
    let mean_obs = reaggregate(AggregationRule::Mean);
    let median_obs = reaggregate(AggregationRule::Median);

    let err = |obs: &[(RoadId, f64)]| -> f64 {
        obs.iter().map(|&(r, v)| (v - truth[r.index()]).abs()).sum::<f64>() / obs.len() as f64
    };
    assert!(
        err(&median_obs) < 0.5 * err(&mean_obs),
        "median MAE {} should be far below mean MAE {}",
        err(&median_obs),
        err(&mean_obs)
    );
}

#[test]
fn pipeline_works_on_alternative_topologies() {
    for (name, graph) in [
        ("small-world", crowd_rtse::graph::generators::watts_strogatz(80, 2, 0.2, 3)),
        ("scale-free", crowd_rtse::graph::generators::barabasi_albert(80, 2, 3)),
    ] {
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 8, seed: 3, ..SynthConfig::small_test() },
        )
        .generate();
        let engine = CrowdRtse::new(
            &graph,
            OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
        );
        let slot = SlotOfDay::from_hm(17, 0);
        let truth = dataset.ground_truth_snapshot(slot);
        let query = SpeedQuery::new(graph.road_ids().collect(), slot);
        let pool = WorkerPool::spawn(&graph, 40, 0.4, (0.2, 1.0), 8);
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, 8);
        let answer = engine.answer_query(
            &query,
            &pool,
            &costs,
            truth,
            &OnlineConfig { budget: 25, ..Default::default() },
        );
        let rep = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
        assert!(rep.mape < 0.6, "{name}: MAPE {}", rep.mape);
        assert!(answer.selection.spent <= 25, "{name}: overspent");
    }
}

#[test]
fn monitoring_session_ledger_and_quality_over_a_rush_hour() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(120, 31);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 10, seed: 31, ..SynthConfig::default() })
            .generate();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let pool = WorkerPool::spawn(&graph, 60, 0.5, (0.3, 1.0), 2);
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 2);
    let budget = 20u32;
    let mut session =
        MonitoringSession::new(&engine, OnlineConfig { budget, ..Default::default() }, pool, costs);
    let queried: Vec<RoadId> = graph.road_ids().collect();
    let start = SlotOfDay::from_hm(8, 0);
    for k in 0..6u16 {
        let slot = SlotOfDay(start.0 + k);
        let truth = dataset.ground_truth_snapshot(slot).to_vec();
        let report = session.step(&queried, slot, &truth).expect("well-formed round");
        assert!(report.selection.spent <= budget);
        let rep = ErrorReport::evaluate_default(&report.values, &truth, &queried);
        assert!(rep.mape < 0.5, "round {k}: MAPE {}", rep.mape);
    }
    assert_eq!(session.rounds_run(), 6);
    assert!(session.total_paid() <= 6 * budget);
}

#[test]
fn exact_inference_validates_engine_estimates() {
    // The engine's GSP output must agree with the closed-form conditional
    // MAP (conjugate gradient) across the crate boundary.
    let graph = crowd_rtse::graph::generators::grid(4, 4);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 10, seed: 13, ..SynthConfig::default() })
            .generate();
    let model = moment_estimate(&graph, &dataset.history);
    let slot = SlotOfDay::from_hm(8, 30);
    let truth = dataset.ground_truth_snapshot(slot);
    let observations: Vec<(RoadId, f64)> =
        [0usize, 5, 10, 15].iter().map(|&i| (RoadId::from(i), truth[i])).collect();
    let gsp = GspSolver { epsilon: 1e-10, max_rounds: 20_000, record_trace: false }.propagate(
        &graph,
        model.slot(slot),
        &observations,
    );
    let exact = exact_map_estimate(&graph, model.slot(slot), &observations);
    assert!(gsp.converged);
    for r in graph.road_ids() {
        assert!(
            (gsp.speed(r) - exact[r.index()]).abs() < 1e-5,
            "road {r}: gsp {} vs exact {}",
            gsp.speed(r),
            exact[r.index()]
        );
    }
}
