//! Mixed data sources: train the offline stage from fixed stations +
//! floating-car probes instead of the dense feed, and verify the online
//! pipeline still works end to end.

use crowd_rtse::data::trajectory::{simulate_fleet, FleetConfig};
use crowd_rtse::data::StationNetwork;
use crowd_rtse::prelude::*;

#[test]
fn pipeline_trains_from_stations_plus_probes() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(120, 44);
    // Dense ground truth exists only inside the generator; the training
    // corpus is what the sensors and probe vehicles actually observed.
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 15, seed: 44, incidents_per_day: 2.0, ..SynthConfig::default() },
    )
    .generate();

    let stations = StationNetwork::on_busiest_roads(&graph, 20, 3);
    let station_data = stations.record(&graph, &dataset.history);
    let (_, probe_data) = simulate_fleet(
        &graph,
        &dataset.history,
        &FleetConfig { trips_per_day: 300, ..Default::default() },
    );
    let mut observed_history = station_data;
    observed_history.merge_from(&probe_data);
    let coverage = observed_history.num_records() as f64 / dataset.history.num_records() as f64;
    assert!(
        (0.05..0.95).contains(&coverage),
        "mixed sources should be meaningfully sparse: coverage {coverage}"
    );

    // Train on the sparse corpus, answer online queries as usual.
    let sparse_model = moment_estimate(&graph, &observed_history);
    let engine = CrowdRtse::new(&graph, OfflineArtifacts::from_model(sparse_model));
    let slot = SlotOfDay::from_hm(8, 30);
    let truth = dataset.ground_truth_snapshot(slot);
    let query = SpeedQuery::new(graph.road_ids().collect(), slot);
    let pool = WorkerPool::spawn(&graph, 60, 0.5, (0.3, 1.0), 5);
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 5);
    let answer = engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: 30, ..Default::default() },
    );
    let sparse_rep = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
    assert!(sparse_rep.mape < 0.6, "sparse-trained MAPE {}", sparse_rep.mape);

    // Dense training is better, but the sparse corpus must stay within a
    // sane factor (it has the same statistical structure, fewer samples).
    let dense_engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let dense_answer = dense_engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: 30, ..Default::default() },
    );
    let dense_rep = ErrorReport::evaluate_default(&dense_answer.all_values, truth, &query.roads);
    assert!(
        sparse_rep.mape < dense_rep.mape * 4.0 + 0.1,
        "sparse {} vs dense {}: degradation too large",
        sparse_rep.mape,
        dense_rep.mape
    );
}

#[test]
fn station_density_improves_sparse_training() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(100, 55);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 12, seed: 55, incidents_per_day: 0.0, ..SynthConfig::default() },
    )
    .generate();
    let slot = SlotOfDay::from_hm(18, 0);
    let truth = dataset.ground_truth_snapshot(slot);

    let per_mape = |num_stations: usize| -> f64 {
        let stations = StationNetwork::random(&graph, num_stations, 7);
        let observed = stations.record(&graph, &dataset.history);
        let model = moment_estimate(&graph, &observed);
        // Periodic-only estimate from the sparse-trained model: roads a
        // station covers get real means, the rest fall back to 0-mean —
        // count only covered roads for a fair trend check.
        let covered: Vec<RoadId> = stations.roads.clone();
        let est = model.slot(slot).mu.clone();
        ErrorReport::evaluate_default(&est, truth, &covered).mape
    };
    // Covered-road quality is budget-independent; what grows with station
    // count is coverage. Check that covered-road MAPE stays stable and
    // low for both deployments.
    let small = per_mape(10);
    let large = per_mape(40);
    assert!(small < 0.3, "small deployment covered-road MAPE {small}");
    assert!(large < 0.3, "large deployment covered-road MAPE {large}");
}
