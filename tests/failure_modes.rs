//! Failure-injection integration tests: the pipeline must degrade
//! gracefully, not panic, when resources are missing or degenerate.

use crowd_rtse::prelude::*;

fn tiny_world() -> (Graph, SynthDataset, Vec<u32>) {
    let graph = crowd_rtse::graph::generators::grid(4, 4);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 6, seed: 9, ..SynthConfig::small_test() },
    )
    .generate();
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 9);
    (graph, dataset, costs)
}

#[test]
fn zero_budget_returns_periodic_means() {
    let (graph, dataset, costs) = tiny_world();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let slot = SlotOfDay::from_hm(10, 0);
    let truth = dataset.ground_truth_snapshot(slot);
    let query = SpeedQuery::new(graph.road_ids().collect(), slot);
    let pool = WorkerPool::spawn(&graph, 20, 0.5, (0.3, 1.0), 2);
    let answer = engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: 0, ..Default::default() },
    );
    assert_eq!(answer.all_values, engine.offline().model().slot(slot).mu);
    assert_eq!(answer.paid, 0);
    assert!(answer.selection.roads.is_empty());
}

#[test]
fn empty_worker_pool_returns_periodic_means() {
    let (graph, dataset, costs) = tiny_world();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let slot = SlotOfDay::from_hm(15, 0);
    let truth = dataset.ground_truth_snapshot(slot);
    let query = SpeedQuery::new(vec![RoadId(5)], slot);
    let pool = WorkerPool::spawn(&graph, 0, 0.0, (0.1, 0.2), 1);
    let answer = engine.answer_query(&query, &pool, &costs, truth, &OnlineConfig::default());
    assert_eq!(answer.estimates[0], engine.offline().model().mu(slot, RoadId(5)));
}

#[test]
fn disconnected_network_is_handled() {
    // Two islands; workers only on one of them.
    let mut b = GraphBuilder::new();
    for i in 0..8 {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    for i in 0..3u32 {
        b.add_edge(RoadId(i), RoadId(i + 1));
    }
    for i in 4..7u32 {
        b.add_edge(RoadId(i), RoadId(i + 1));
    }
    let graph = b.build();
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 6, seed: 3, ..SynthConfig::small_test() },
    )
    .generate();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let slot = SlotOfDay::from_hm(8, 0);
    let truth = dataset.ground_truth_snapshot(slot);
    let query = SpeedQuery::new(graph.road_ids().collect(), slot);
    let pool = WorkerPool::spawn_on_roads(&graph, &[RoadId(0)], 5, 0.2, (0.2, 0.5), 4);
    let costs = vec![1u32; graph.num_roads()];
    let answer = engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: 5, ..Default::default() },
    );
    // The uncovered island keeps its periodic means.
    let mu = engine.offline().model().slot(slot).mu.clone();
    for r in 4..8 {
        assert_eq!(answer.all_values[r], mu[r]);
    }
    // The covered island reflects the observation at road 0.
    assert_eq!(answer.all_values[0], answer.all_values[0]);
    assert!(answer.estimates.iter().all(|v| v.is_finite()));
}

#[test]
fn degenerate_constant_history_survives_training() {
    // A history where every record is the same value: σ hits the floor and
    // correlations are undefined; everything must stay finite.
    let graph = crowd_rtse::graph::generators::path(4);
    let mut history = HistoryStore::new(4, 3);
    for day in 0..3 {
        for slot in SlotOfDay::all() {
            for r in 0..4 {
                history.set(day, slot, RoadId(r), 50.0);
            }
        }
    }
    let model = moment_estimate(&graph, &history);
    let slot = SlotOfDay(0);
    assert!(model.slot(slot).sigma.iter().all(|s| *s > 0.0));
    assert!(model.slot(slot).rho.iter().all(|r| r.is_finite()));
    // GSP on the degenerate model still converges.
    let solver = GspSolver::default();
    let result = solver.propagate(&graph, model.slot(slot), &[(RoadId(0), 30.0)]);
    assert!(result.converged);
    assert!(result.values.iter().all(|v| v.is_finite()));
}

#[test]
fn sparse_history_with_missing_days_trains() {
    let graph = crowd_rtse::graph::generators::grid(2, 3);
    let full = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 10, seed: 8, ..SynthConfig::small_test() },
    )
    .generate();
    // Blank out 60% of the records.
    let mut sparse = HistoryStore::new(graph.num_roads(), 10);
    let mut keep = 0usize;
    for (i, rec) in full.history.records().enumerate() {
        if i % 5 < 2 {
            sparse.insert(&rec);
            keep += 1;
        }
    }
    assert!(keep > 0);
    let model = moment_estimate(&graph, &sparse);
    let slot = SlotOfDay::from_hm(8, 0);
    assert!(model.slot(slot).mu.iter().all(|m| m.is_finite()));
    let trainer = RtfTrainer { max_iters: 30, ..Default::default() };
    let (params, _) = trainer.train_slot(&graph, &sparse, slot);
    assert!(params.mu.iter().all(|m| m.is_finite()));
    assert!(params.sigma.iter().all(|s| *s > 0.0));
}

#[test]
fn theta_extremes_behave() {
    let (graph, dataset, costs) = tiny_world();
    let model = moment_estimate(&graph, &dataset.history);
    let slot = SlotOfDay::from_hm(9, 0);
    let corr = CorrelationTable::build(&graph, &model, slot, PathCorrelation::MaxProduct);
    let queried: Vec<RoadId> = graph.road_ids().collect();
    let pool = WorkerPool::spawn(&graph, 30, 0.5, (0.3, 1.0), 5);
    let candidates = pool.covered_roads();
    let params = model.slot(slot);
    // θ → 0⁺ allows at most one road from any correlated cluster; θ = 1
    // disables the constraint entirely.
    let tight = OcsInstance {
        sigma: &params.sigma,
        corr: &corr,
        queried: &queried,
        candidates: &candidates,
        costs: &costs,
        budget: 20,
        theta: 1e-6,
    };
    let loose = OcsInstance { theta: 1.0, ..tight.clone() };
    let sel_tight = hybrid_greedy(&tight);
    let sel_loose = hybrid_greedy(&loose);
    assert!(sel_tight.roads.len() <= sel_loose.roads.len());
    assert!(sel_tight.is_feasible(&tight));
    assert!(sel_loose.is_feasible(&loose));
}
