//! Cross-crate property tests on small random worlds.

use crowd_rtse::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole pipeline upholds its invariants for arbitrary seeds,
    /// budgets and pool sizes.
    #[test]
    fn pipeline_invariants(
        seed in 0u64..1000,
        budget in 0u32..40,
        workers in 0usize..60,
        hour in 0u32..24,
    ) {
        let graph = crowd_rtse::graph::generators::grid(4, 4);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 5, seed, ..SynthConfig::small_test() },
        )
        .generate();
        let engine = CrowdRtse::new(
            &graph,
            OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
        );
        let slot = SlotOfDay::from_hm(hour, 0);
        let truth = dataset.ground_truth_snapshot(slot);
        let query = SpeedQuery::new(graph.road_ids().collect(), slot);
        let pool = WorkerPool::spawn(&graph, workers, 0.5, (0.2, 1.0), seed);
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
        let config = OnlineConfig { budget, ..Default::default() };
        let answer = engine.answer_query(&query, &pool, &costs, truth, &config);

        // Budget never exceeded; all estimates finite and non-negative.
        prop_assert!(answer.selection.spent <= budget);
        prop_assert!(answer.all_values.iter().all(|v| v.is_finite() && *v >= 0.0));
        prop_assert_eq!(answer.estimates.len(), query.roads.len());
        // Selected roads all came from the worker-covered set.
        let covered = pool.covered_roads();
        prop_assert!(answer.selection.roads.iter().all(|r| covered.contains(r)));
    }

    /// Moment estimation and CCD training agree on μ for random slices of
    /// synthetic data (the restored-normalizer MLE coincides with moments).
    #[test]
    fn trainer_matches_moments(seed in 0u64..200, slot_idx in 0u16..288) {
        let graph = crowd_rtse::graph::generators::path(4);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 10, seed, incidents_per_day: 0.0, ..SynthConfig::default() },
        )
        .generate();
        let slot = SlotOfDay(slot_idx);
        let trainer = RtfTrainer { max_iters: 200, ..Default::default() };
        let (trained, _) = trainer.train_slot(&graph, &dataset.history, slot);
        let moments = crowd_rtse::rtf::moments::moment_estimate_slot(
            &graph, &dataset.history, slot,
        );
        for i in 0..4 {
            prop_assert!(
                (trained.mu[i] - moments.mu[i]).abs() < 0.5,
                "μ[{}]: {} vs {}", i, trained.mu[i], moments.mu[i]
            );
        }
    }

    /// The correlation table is symmetric with unit diagonal regardless of
    /// the trained parameters, under both path semantics.
    #[test]
    fn correlation_table_invariants(seed in 0u64..200) {
        let graph = crowd_rtse::graph::generators::random_geometric(20, 0.3, seed);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 5, seed, ..SynthConfig::small_test() },
        )
        .generate();
        let model = moment_estimate(&graph, &dataset.history);
        let slot = SlotOfDay::from_hm(8, 30);
        for semantics in [PathCorrelation::MaxProduct, PathCorrelation::ReciprocalSum] {
            let t = CorrelationTable::build(&graph, &model, slot, semantics);
            for a in graph.road_ids() {
                prop_assert_eq!(t.corr(a, a), 1.0);
                for b in graph.road_ids() {
                    let ab = t.corr(a, b);
                    prop_assert!((0.0..=1.0).contains(&ab));
                    prop_assert!((ab - t.corr(b, a)).abs() < 1e-12);
                }
            }
        }
    }

    /// MaxProduct path correlation always dominates ReciprocalSum (it
    /// maximizes the product directly).
    #[test]
    fn max_product_dominates_reciprocal(seed in 0u64..100) {
        let graph = crowd_rtse::graph::generators::random_geometric(15, 0.35, seed);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 5, seed, ..SynthConfig::small_test() },
        )
        .generate();
        let model = moment_estimate(&graph, &dataset.history);
        let slot = SlotOfDay(100);
        let mp = CorrelationTable::build(&graph, &model, slot, PathCorrelation::MaxProduct);
        let rs = CorrelationTable::build(&graph, &model, slot, PathCorrelation::ReciprocalSum);
        for a in graph.road_ids() {
            for b in graph.road_ids() {
                if graph.are_adjacent(a, b) || a == b {
                    continue; // Eq. (7) overrides both identically
                }
                prop_assert!(
                    mp.corr(a, b) + 1e-12 >= rs.corr(a, b),
                    "corr({}, {}): mp {} < rs {}", a, b, mp.corr(a, b), rs.corr(a, b)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// GSP's fixed point equals the exact conditional MAP on random
    /// geometric networks with moment-estimated parameters.
    #[test]
    fn gsp_matches_exact_map(seed in 0u64..100) {
        let graph = crowd_rtse::graph::generators::random_geometric(18, 0.35, seed);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 6, seed, ..SynthConfig::small_test() },
        )
        .generate();
        let model = moment_estimate(&graph, &dataset.history);
        let slot = SlotOfDay(77);
        let truth = dataset.ground_truth_snapshot(slot);
        let observations: Vec<(RoadId, f64)> = (0..graph.num_roads())
            .step_by(5)
            .map(|i| (RoadId::from(i), truth[i]))
            .collect();
        let gsp = GspSolver { epsilon: 1e-11, max_rounds: 50_000, record_trace: false }
            .propagate(&graph, model.slot(slot), &observations);
        let exact = exact_map_estimate(&graph, model.slot(slot), &observations);
        prop_assert!(gsp.converged);
        for r in graph.road_ids() {
            prop_assert!(
                (gsp.speed(r) - exact[r.index()]).abs() < 1e-4,
                "road {}: {} vs {}", r, gsp.speed(r), exact[r.index()]
            );
        }
    }

    /// Daily budget plans always sum exactly to the total and are
    /// deterministic.
    #[test]
    fn budget_plan_invariants(total in 0u32..2000, seed in 0u64..50) {
        use crowd_rtse::core::plan_daily_budget;
        let graph = crowd_rtse::graph::generators::grid(3, 3);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 5, seed, ..SynthConfig::small_test() },
        )
        .generate();
        let model = moment_estimate(&graph, &dataset.history);
        let slots: Vec<SlotOfDay> = (0..288u16).step_by(24).map(SlotOfDay).collect();
        let plan = plan_daily_budget(&model, &slots, total);
        prop_assert_eq!(plan.iter().sum::<u32>(), total);
        prop_assert_eq!(plan.len(), slots.len());
        let again = plan_daily_budget(&model, &slots, total);
        prop_assert_eq!(plan, again);
    }

    /// Lazy and plain greedy agree on realistically-sized worlds (not just
    /// the tiny instances the unit tests use).
    #[test]
    fn lazy_greedy_consistency_at_scale(seed in 0u64..20) {
        use crowd_rtse::ocs::{lazy_hybrid_greedy, lazy_ratio_greedy};
        let graph = crowd_rtse::graph::generators::hong_kong_like(80, seed);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 5, seed, ..SynthConfig::small_test() },
        )
        .generate();
        let model = moment_estimate(&graph, &dataset.history);
        let slot = SlotOfDay::from_hm(8, 30);
        let corr = CorrelationTable::build(&graph, &model, slot, PathCorrelation::MaxProduct);
        let params = model.slot(slot);
        let candidates: Vec<RoadId> = graph.road_ids().collect();
        let queried: Vec<RoadId> = (0..graph.num_roads()).step_by(3).map(RoadId::from).collect();
        let costs = uniform_costs(graph.num_roads(), CostRange::C1, seed);
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 40,
            theta: 0.92,
        };
        prop_assert_eq!(lazy_ratio_greedy(&inst), ratio_greedy(&inst));
        prop_assert_eq!(lazy_hybrid_greedy(&inst), hybrid_greedy(&inst));
    }
}
