//! Deterministic instrumentation tests: the observability layer must
//! report *exact* stage counts for a fixed-seed pipeline run — at any
//! pool width — and must not perturb a single output bit.
//!
//! Count assertions are guarded by `ObsHandle::is_enabled()`: under the
//! facade's `obs-noop` feature, cargo feature unification disables
//! recording workspace-wide and every registry stays at zero.

use crowd_rtse::prelude::*;

fn trained_world(seed: u64) -> (Graph, SynthDataset, Vec<u32>, crowd_rtse::rtf::RtfModel) {
    let graph = crowd_rtse::graph::generators::grid(4, 5);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 10, seed, ..SynthConfig::default() })
            .generate();
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
    let model = moment_estimate(&graph, &dataset.history);
    (graph, dataset, costs, model)
}

/// One fixed-seed offline→OCS→GSP run records exactly the counts the
/// pipeline's structure dictates, and the counts are identical at pool
/// width 1 and 4 (explicit widths — `threads: 0` would read the same
/// `RTSE_THREADS` the widths stand in for).
#[test]
fn fixed_seed_pipeline_records_exact_stage_counts_at_widths_1_and_4() {
    let (graph, dataset, costs, _) = trained_world(2018);
    let n_roads = graph.num_roads() as u64;
    let rounds = 3usize;
    let mut per_width: Vec<Vec<u64>> = Vec::new();

    for threads in [1usize, 4] {
        let obs = ObsHandle::fresh();
        if !obs.is_enabled() {
            return; // obs-noop build: every registry stays at zero
        }

        // Offline: full-day training, instrumented.
        let trainer = RtfTrainer { max_iters: 3, threads, ..Default::default() };
        let (model, _stats) = trainer.train_with_obs(&graph, &dataset.history, &obs);

        // Online: one engine, one session, `rounds` same-slot steps (the
        // correlation table builds once and is cached afterwards).
        let engine =
            CrowdRtse::new(&graph, OfflineArtifacts::from_model(model)).with_obs(obs.clone());
        let pool = WorkerPool::spawn(&graph, 40, 0.5, (0.3, 1.0), 7);
        let mut session = MonitoringSession::new(
            &engine,
            OnlineConfig { budget: 15, ..Default::default() },
            pool,
            costs.clone(),
        );
        let queried: Vec<RoadId> = graph.road_ids().collect();
        let slot = SlotOfDay::from_hm(8, 30);
        for _ in 0..rounds {
            let truth = dataset.ground_truth_snapshot(slot);
            session.step(&queried, slot, truth).expect("well-formed round");
        }

        let reg = obs.registry().expect("enabled handle has a registry");
        assert_eq!(reg.count(Stage::RtfSlotFit), SLOTS_PER_DAY as u64, "one fit per slot of day");
        assert_eq!(reg.count(Stage::CorrDijkstraRow), n_roads, "one Dijkstra row per road");
        assert_eq!(
            reg.count(Stage::GspRound),
            session.rounds_run() as u64,
            "one gsp.round span per session round"
        );
        assert_eq!(reg.count(Stage::OcsSelect), rounds as u64, "one OCS solve per round");
        assert_eq!(reg.count(Stage::GspItersToConverge), rounds as u64);
        // pool.jobs is per work item regardless of pool width: 288 slot
        // fits plus one Dijkstra row per road.
        assert_eq!(reg.count(Stage::PoolJobs), SLOTS_PER_DAY as u64 + n_roads);
        assert_eq!(reg.gauge(Stage::PoolQueueDepth), 0, "queue depth returns to zero");

        per_width.push(vec![
            reg.count(Stage::RtfSlotFit),
            reg.count(Stage::CorrDijkstraRow),
            reg.count(Stage::GspRound),
            reg.count(Stage::OcsSelect),
            reg.count(Stage::PoolJobs),
        ]);
    }

    assert_eq!(per_width[0], per_width[1], "stage counts must not depend on pool width");
}

/// Serial-equivalence regression: estimates are bit-identical with a live
/// registry attached vs the no-op handle. Instrumentation may observe the
/// pipeline; it may not steer it.
#[test]
fn instrumented_and_noop_estimates_are_bit_identical() {
    let (graph, dataset, costs, model) = trained_world(31);
    let slot = SlotOfDay::from_hm(17, 0);
    let truth = dataset.ground_truth_snapshot(slot);
    let query = SpeedQuery::new((0u32..12).map(RoadId).collect(), slot);
    let config = OnlineConfig { budget: 20, ..Default::default() };

    let run = |obs: ObsHandle| {
        let engine =
            CrowdRtse::new(&graph, OfflineArtifacts::from_model(model.clone())).with_obs(obs);
        let pool = WorkerPool::spawn(&graph, 35, 0.5, (0.3, 1.0), 11);
        let answer = engine.answer_query(&query, &pool, &costs, truth, &config);

        // A warm-started session exercises the other propagation path.
        let pool = WorkerPool::spawn(&graph, 35, 0.5, (0.3, 1.0), 11);
        let mut session = MonitoringSession::new(&engine, config, pool, costs.clone());
        let queried: Vec<RoadId> = graph.road_ids().collect();
        let mut values = answer.all_values;
        for _ in 0..2 {
            let report = session.step(&queried, slot, truth).expect("well-formed round");
            values.extend_from_slice(&report.values);
        }
        values
    };

    let instrumented = run(ObsHandle::fresh());
    let noop = run(ObsHandle::noop());
    assert_eq!(instrumented.len(), noop.len());
    for (i, (a, b)) in instrumented.iter().zip(noop.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "estimate {i} diverged under instrumentation");
    }
}

/// The serving layer's registry mirror agrees with the serve metrics'
/// own bookkeeping, and the coherent snapshot's invariant holds at drain.
#[test]
fn serve_stage_counters_match_the_serve_metrics() {
    let (graph, dataset, costs, model) = trained_world(77);
    let obs = ObsHandle::fresh();
    let engine = CrowdRtse::new(&graph, OfflineArtifacts::from_model(model)).with_obs(obs.clone());
    let workers = WorkerPool::spawn(&graph, 30, 0.5, (0.3, 1.0), 5);
    let world = crowd_rtse::serve::ServeWorld { workers: &workers, costs: &costs, truth: &dataset };
    let config = ServeConfig { obs: obs.clone(), ..ServeConfig::default() };

    let slots = [SlotOfDay::from_hm(8, 0), SlotOfDay::from_hm(8, 0), SlotOfDay::from_hm(9, 0)];
    let outcome = serve(&engine, &world, &config, |handle| {
        for (i, &slot) in slots.iter().enumerate() {
            let roads = vec![RoadId(i as u32), RoadId(i as u32 + 3)];
            handle.query(ServeRequest::new(roads, slot)).expect("no-deadline query is answered");
        }
        let snap = handle.coherent_snapshot();
        assert_eq!(
            snap.metrics.rounds,
            snap.total_generations(),
            "every round publication advances exactly one slot generation"
        );
        snap
    })
    .expect("serve deploys");

    let metrics = outcome.metrics;
    assert_eq!(metrics.answered, slots.len() as u64);
    if obs.is_enabled() {
        let reg = obs.registry().expect("enabled handle has a registry");
        assert_eq!(
            reg.count(Stage::ServeCacheHit),
            metrics.cache_hit_queries,
            "registry mirror must agree with the cache's own hit counter"
        );
        assert_eq!(reg.count(Stage::ServeRound), metrics.rounds, "one serve.round span per round");
        assert_eq!(
            reg.count(Stage::ServeQueueWait),
            metrics.answered,
            "queue wait sampled once per answered no-deadline request"
        );
    }
}

/// The TCP front-end's stage counters are exact for a fixed workload:
/// one `edge.accept` per connection, one `edge.frame_decode` span per
/// complete frame off the wire, and the `edge.conn_active` gauge back to
/// zero once every socket has been drained and closed.
#[test]
fn edge_stage_counters_are_exact_for_a_fixed_workload() {
    let (graph, dataset, costs, model) = trained_world(99);
    let obs = ObsHandle::fresh();
    if !obs.is_enabled() {
        return; // obs-noop build: every registry stays at zero
    }
    let engine = CrowdRtse::new(&graph, OfflineArtifacts::from_model(model)).with_obs(obs.clone());
    let workers = WorkerPool::spawn(&graph, 30, 0.5, (0.3, 1.0), 5);
    let world = crowd_rtse::serve::ServeWorld { workers: &workers, costs: &costs, truth: &dataset };
    let serve_cfg = ServeConfig { obs: obs.clone(), ..ServeConfig::default() };
    let edge_cfg = EdgeConfig { shards: 2, obs: obs.clone(), ..EdgeConfig::default() };

    const CONNS: u64 = 3;
    const FRAMES_PER_CONN: u64 = 4;
    let outcome = edge_serve(&engine, &world, &serve_cfg, &edge_cfg, |edge| {
        for c in 0..CONNS {
            let mut client = EdgeClient::connect(edge.addr()).expect("connect");
            for i in 0..FRAMES_PER_CONN {
                let reply = client
                    .query(vec![(c as u32 + i as u32) % 7], 60 + c as u16, None, None)
                    .expect("reply");
                assert!(matches!(reply, crowd_rtse::edge::ClientReply::Answer(_)), "got {reply:?}");
            }
        }
    })
    .expect("edge deploys");

    assert_eq!(outcome.edge_metrics.accepted, CONNS);
    assert_eq!(outcome.edge_metrics.queries, CONNS * FRAMES_PER_CONN);
    assert_eq!(outcome.edge_metrics.answers, CONNS * FRAMES_PER_CONN);

    let reg = obs.registry().expect("enabled handle has a registry");
    assert_eq!(reg.count(Stage::EdgeAccept), CONNS, "one edge.accept per connection");
    assert_eq!(
        reg.count(Stage::EdgeFrameDecode),
        CONNS * FRAMES_PER_CONN,
        "one edge.frame_decode span per complete frame"
    );
    assert_eq!(reg.gauge(Stage::EdgeConnActive), 0, "conn gauge returns to zero at drain");
    // Write spans depend on flush batching; at least one write happened.
    assert!(reg.count(Stage::EdgeWrite) >= 1, "at least one edge.write span");
}
