//! End-to-end integration tests: offline training → online query.

use crowd_rtse::prelude::*;

struct World {
    graph: Graph,
    dataset: SynthDataset,
    costs: Vec<u32>,
}

fn world(roads: usize, days: usize, seed: u64) -> World {
    let graph = crowd_rtse::graph::generators::hong_kong_like(roads, seed);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days, seed, incidents_per_day: 2.0, ..SynthConfig::default() },
    )
    .generate();
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
    World { graph, dataset, costs }
}

#[test]
fn full_pipeline_produces_reasonable_estimates() {
    let w = world(120, 12, 101);
    let offline = OfflineArtifacts::from_model(moment_estimate(&w.graph, &w.dataset.history));
    let engine = CrowdRtse::new(&w.graph, offline);
    let slot = SlotOfDay::from_hm(8, 30);
    let truth = w.dataset.ground_truth_snapshot(slot);
    let queried: Vec<RoadId> = (0..w.graph.num_roads()).step_by(3).map(RoadId::from).collect();
    let query = SpeedQuery::new(queried.clone(), slot);
    let pool = WorkerPool::spawn(&w.graph, 80, 0.5, (0.3, 1.2), 11);
    let config = OnlineConfig { budget: 40, ..Default::default() };
    let answer = engine.answer_query(&query, &pool, &w.costs, truth, &config);

    let report = ErrorReport::evaluate_default(&answer.all_values, truth, &queried);
    assert!(report.mape < 0.5, "MAPE too high: {}", report.mape);
    assert!(report.fer < 0.5, "FER too high: {}", report.fer);
    // Budget respected end to end.
    assert!(answer.selection.spent <= config.budget);
}

#[test]
fn pipeline_is_deterministic() {
    let w = world(80, 8, 202);
    let run = || {
        let offline = OfflineArtifacts::from_model(moment_estimate(&w.graph, &w.dataset.history));
        let engine = CrowdRtse::new(&w.graph, offline);
        let slot = SlotOfDay::from_hm(17, 30);
        let truth = w.dataset.ground_truth_snapshot(slot);
        let query = SpeedQuery::new((0u32..20).map(RoadId).collect(), slot);
        let pool = WorkerPool::spawn(&w.graph, 50, 0.5, (0.3, 1.2), 4);
        engine.answer_query(&query, &pool, &w.costs, truth, &OnlineConfig::default()).all_values
    };
    assert_eq!(run(), run());
}

#[test]
fn crowdsourcing_improves_over_periodic_when_incident_hits() {
    // A single seed can be adverse (workers may sit on the wrong side of
    // the incident), so the claim is made over several independent worlds.
    let mut crowd_total = 0.0;
    let mut per_total = 0.0;
    for seed in [303u64, 304, 305, 306] {
        let graph = crowd_rtse::graph::generators::hong_kong_like(100, seed);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig {
                days: 12,
                seed,
                incidents_per_day: 3.0,
                severity_range: (0.5, 0.7),
                duration_range: (36, 72),
                ..SynthConfig::default()
            },
        )
        .generate();
        let inc = dataset.today_incidents.first().expect("incidents guaranteed").clone();
        let slot = SlotOfDay(((inc.start.index() + inc.duration_slots / 2).min(287)) as u16);
        let truth = dataset.ground_truth_snapshot(slot);

        let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
        let engine = CrowdRtse::new(&graph, offline);
        let neighborhood = crowd_rtse::graph::bfs::k_hop_neighborhood(&graph, &[inc.road], 2);
        let query = SpeedQuery::new(neighborhood.clone(), slot);
        // Workers concentrated near the incident.
        let pool = WorkerPool::spawn_on_roads(&graph, &neighborhood, 30, 0.4, (0.3, 1.0), 6);
        let costs = vec![1u32; graph.num_roads()];
        let answer = engine.answer_query(
            &query,
            &pool,
            &costs,
            truth,
            &OnlineConfig { budget: 15, ..Default::default() },
        );

        let crowd = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
        let periodic = engine.offline().model().slot(slot).mu.clone();
        let per = ErrorReport::evaluate_default(&periodic, truth, &query.roads);
        crowd_total += crowd.mape;
        per_total += per.mape;
    }
    assert!(
        crowd_total < per_total,
        "crowd MAPE sum {crowd_total} should beat periodic {per_total}"
    );
}

#[test]
fn hybrid_selection_no_worse_than_random_on_average() {
    let w = world(100, 10, 404);
    let offline = OfflineArtifacts::from_model(moment_estimate(&w.graph, &w.dataset.history));
    let engine = CrowdRtse::new(&w.graph, offline);
    let slot = SlotOfDay::from_hm(9, 0);
    let truth = w.dataset.ground_truth_snapshot(slot);
    let queried: Vec<RoadId> = (0..w.graph.num_roads()).step_by(2).map(RoadId::from).collect();
    let query = SpeedQuery::new(queried.clone(), slot);
    let pool = WorkerPool::spawn(&w.graph, 70, 0.5, (0.3, 1.2), 2);

    let run = |strategy| {
        let config = OnlineConfig { budget: 20, strategy, ..Default::default() };
        let answer = engine.answer_query(&query, &pool, &w.costs, truth, &config);
        ErrorReport::evaluate_default(&answer.all_values, truth, &queried).mape
    };
    let hybrid = run(SelectionStrategy::Hybrid);
    let random_avg: f64 = (0..5).map(|s| run(SelectionStrategy::Random(s))).sum::<f64>() / 5.0;
    assert!(
        hybrid <= random_avg + 0.02,
        "hybrid {hybrid} should not lose clearly to random {random_avg}"
    );
}

#[test]
fn objective_value_of_hybrid_dominates_on_real_instance() {
    // OCS invariant at integration scale: Hybrid ≥ max(Ratio, Objective).
    let w = world(150, 8, 505);
    let model = moment_estimate(&w.graph, &w.dataset.history);
    let slot = SlotOfDay::from_hm(8, 0);
    let corr = CorrelationTable::build(&w.graph, &model, slot, PathCorrelation::MaxProduct);
    let pool = WorkerPool::spawn(&w.graph, 100, 0.5, (0.3, 1.2), 3);
    let candidates = pool.covered_roads();
    let queried: Vec<RoadId> = (0..w.graph.num_roads()).step_by(5).map(RoadId::from).collect();
    let params = model.slot(slot);
    for budget in [10u32, 30, 60] {
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &queried,
            candidates: &candidates,
            costs: &w.costs,
            budget,
            theta: 0.92,
        };
        let h = hybrid_greedy(&inst);
        let r = ratio_greedy(&inst);
        let o = objective_greedy(&inst);
        assert!(h.value >= r.value - 1e-9);
        assert!(h.value >= o.value - 1e-9);
        assert!(h.is_feasible(&inst));
    }
}
