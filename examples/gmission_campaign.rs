//! gMission-style campaign: reproduce the shape of the paper's second
//! evaluation (Fig. 6) as a runnable scenario.
//!
//! 50 connected queried roads, 30 worker roads inside them (`R^w ⊂ R^q`),
//! uniform costs 1–10, budgets 10–50 — Table II's gMission row.
//!
//! ```sh
//! cargo run --release --example gmission_campaign
//! ```

use crowd_rtse::prelude::*;

fn main() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(607, 11);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 15, seed: 11, ..SynthConfig::default() })
            .generate();

    let scenario = GMissionScenario::build(&graph, &GMissionSpec::default());
    println!(
        "gMission scenario: |R^q| = {}, |R^w| = {}, {} workers",
        scenario.queried.len(),
        scenario.worker_roads.len(),
        scenario.pool.len()
    );

    let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
    let engine = CrowdRtse::new(&graph, offline);

    let slot = SlotOfDay::from_hm(9, 0);
    let truth = dataset.ground_truth_snapshot(slot);
    let query = SpeedQuery::new(scenario.queried.clone(), slot);

    let mut table = Table::new(
        "gMission budget sweep (Hybrid-Greedy selection)",
        &["K", "sampled roads", "MAPE", "FER", "1-hop coverage", "2-hop coverage"],
    );
    for budget in [10u32, 20, 30, 40, 50] {
        let config = OnlineConfig { budget, ..Default::default() };
        let answer = engine.answer_query(&query, &scenario.pool, &scenario.costs, truth, &config);
        let report = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
        let c1 = k_hop_coverage(&graph, &query.roads, &answer.selection.roads, 1);
        let c2 = k_hop_coverage(&graph, &query.roads, &answer.selection.roads, 2);
        table.push_row(vec![
            budget.to_string(),
            answer.selection.roads.len().to_string(),
            format!("{:.3}", report.mape),
            format!("{:.3}", report.fer),
            c1.to_string(),
            c2.to_string(),
        ]);
    }
    println!("\n{}", table.render());

    // Compare the four estimators at one budget, like Fig. 6.
    let config = OnlineConfig { budget: 30, ..Default::default() };
    let answer = engine.answer_query(&query, &scenario.pool, &scenario.costs, truth, &config);
    let observations: Vec<(RoadId, f64)> =
        answer.selection.roads.iter().map(|&r| (r, answer.all_values[r.index()])).collect();
    let ctx = EstimationContext {
        graph: &graph,
        model: engine.offline().model(),
        history: &dataset.history,
        slot,
    };
    let mut table = Table::new("estimator comparison at K = 30", &["method", "MAPE", "FER"]);
    let estimators: Vec<(&str, Vec<f64>)> = vec![
        ("GSP", answer.all_values.clone()),
        ("LASSO", LassoEstimator::default().estimate(&ctx, &observations)),
        ("GRMC", Grmc::default().estimate(&ctx, &observations)),
        ("Per", Per.estimate(&ctx, &observations)),
    ];
    for (name, estimate) in estimators {
        let report = ErrorReport::evaluate_default(&estimate, truth, &query.roads);
        table.push_row(vec![
            name.into(),
            format!("{:.3}", report.mape),
            format!("{:.3}", report.fer),
        ]);
    }
    println!("{}", table.render());
}
