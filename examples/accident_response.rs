//! Accident response: the scenario that motivates CrowdRTSE's design.
//!
//! A purely periodic model cannot see an incident — its estimate is
//! yesterday's average. This example injects a severe incident into
//! "today", then compares the periodic baseline against the full
//! CrowdRTSE pipeline around the incident epicenter.
//!
//! ```sh
//! cargo run --release --example accident_response
//! ```

use crowd_rtse::prelude::*;

fn main() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(150, 21);
    // History without incidents; today with guaranteed severe incidents.
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig {
            days: 15,
            seed: 21,
            incidents_per_day: 3.0,
            severity_range: (0.55, 0.75),
            duration_range: (36, 72), // 3–6 hours
            ..SynthConfig::default()
        },
    )
    .generate();

    let incident =
        dataset.today_incidents.first().expect("scenario guarantees incidents today").clone();
    let mid_slot =
        SlotOfDay(((incident.start.index() + incident.duration_slots / 2).min(287)) as u16);
    println!(
        "incident at {} starting {:02}:{:02}, lasting {} slots, severity {:.2}",
        incident.road,
        incident.start.hour(),
        incident.start.minute(),
        incident.duration_slots,
        incident.severity
    );

    let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
    let engine = CrowdRtse::new(&graph, offline);

    // Query the incident neighborhood (2 hops around the epicenter).
    let neighborhood = crowd_rtse::graph::bfs::k_hop_neighborhood(&graph, &[incident.road], 2);
    let query = SpeedQuery::new(neighborhood.clone(), mid_slot);
    let truth = dataset.ground_truth_snapshot(mid_slot);

    // Workers are dense around the incident (rubbernecking is real).
    let pool = WorkerPool::spawn_on_roads(&graph, &neighborhood, 40, 0.5, (0.3, 1.2), 5);
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 5);

    let answer = engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: 20, ..Default::default() },
    );

    // Compare against the periodic estimate.
    let periodic = engine.offline().model().slot(mid_slot).mu.clone();
    let crowd_report = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
    let per_report = ErrorReport::evaluate_default(&periodic, truth, &query.roads);

    let mut table = Table::new(
        format!("{}-road incident neighborhood at mid-incident", query.roads.len()),
        &["method", "MAPE", "FER", "MAE km/h"],
    );
    table.push_row(vec![
        "CrowdRTSE".into(),
        format!("{:.3}", crowd_report.mape),
        format!("{:.3}", crowd_report.fer),
        format!("{:.2}", crowd_report.mae),
    ]);
    table.push_row(vec![
        "Periodic (Per)".into(),
        format!("{:.3}", per_report.mape),
        format!("{:.3}", per_report.fer),
        format!("{:.2}", per_report.mae),
    ]);
    println!("\n{}", table.render());

    // Show the epicenter in detail.
    let epi = incident.road;
    println!(
        "epicenter {}: truth {:.1} km/h, periodic says {:.1}, CrowdRTSE says {:.1}",
        epi,
        truth[epi.index()],
        periodic[epi.index()],
        answer.all_values[epi.index()],
    );
    if crowd_report.mape < per_report.mape {
        println!("\nCrowdRTSE caught the slowdown the periodic model missed.");
    } else {
        println!("\nNote: with this seed the workers missed the epicenter; try another seed.");
    }
}
