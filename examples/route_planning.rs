//! Route planning on live estimates: the downstream application the
//! paper's introduction motivates.
//!
//! Computes the fastest route between two points under (a) periodic-mean
//! speeds and (b) CrowdRTSE realtime estimates, then scores both routes'
//! true travel times against ground truth — when an incident blocks the
//! periodic route, the realtime plan detours around it.
//!
//! ```sh
//! cargo run --release --example route_planning
//! ```

use crowd_rtse::graph::{dijkstra_with_paths, Graph, RoadId};
use crowd_rtse::prelude::*;

/// Travel time of an edge in hours, driving half of each endpoint road at
/// its (estimated/true) speed.
fn edge_hours(graph: &Graph, speeds: &[f64], e: crowd_rtse::graph::EdgeId) -> f64 {
    let (a, b) = graph.edge_endpoints(e);
    let time = |r: RoadId| {
        let road = graph.road(r);
        (road.length_m / 1000.0) / speeds[r.index()].max(1.0) / 2.0
    };
    time(a) + time(b)
}

fn route_and_eta(graph: &Graph, speeds: &[f64], from: RoadId, to: RoadId) -> (Vec<RoadId>, f64) {
    let sp = dijkstra_with_paths(graph, from, |e| edge_hours(graph, speeds, e));
    let path = sp.path_to(to).expect("network is connected");
    (path, sp.cost(to))
}

/// True travel time of a concrete route.
fn true_hours(graph: &Graph, truth: &[f64], path: &[RoadId]) -> f64 {
    path.iter().map(|&r| (graph.road(r).length_m / 1000.0) / truth[r.index()].max(1.0)).sum()
}

fn main() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(300, 77);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig {
            days: 12,
            seed: 77,
            incidents_per_day: 4.0,
            severity_range: (0.5, 0.7),
            duration_range: (36, 72),
            ..SynthConfig::default()
        },
    )
    .generate();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );

    // Plan during an active incident.
    let incident = dataset.today_incidents.first().expect("incidents guaranteed");
    let slot = SlotOfDay(((incident.start.index() + incident.duration_slots / 2).min(287)) as u16);
    let truth = dataset.ground_truth_snapshot(slot);

    // Realtime estimate for the whole network; workers cluster around the
    // incident (congestion attracts probes in practice).
    let neighborhood = crowd_rtse::graph::bfs::k_hop_neighborhood(&graph, &[incident.road], 3);
    let mut pool = WorkerPool::spawn(&graph, 100, 0.5, (0.3, 1.2), 4);
    let near = WorkerPool::spawn_on_roads(&graph, &neighborhood, 50, 0.5, (0.3, 1.2), 5);
    let _ = &mut pool; // base fleet roams the city
    let pool = {
        // Merge the two fleets by spawning the union on covered roads.
        let mut covered = pool.covered_roads();
        covered.extend(near.covered_roads());
        covered.sort();
        covered.dedup();
        WorkerPool::spawn_on_roads(&graph, &covered, 150, 0.5, (0.3, 1.2), 6)
    };
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 4);
    let periodic = engine.offline().model().slot(slot).mu.clone();

    // Route across the city into the incident zone.
    let hops = crowd_rtse::graph::hop_distances(&graph, &[incident.road]);
    let from = graph
        .road_ids()
        .filter(|r| hops[r.index()] != usize::MAX)
        .max_by_key(|r| hops[r.index()])
        .expect("connected");
    let to = incident.road;

    // Query the corridor: the periodic route's 2-hop neighborhood (that is
    // where accurate speeds decide the plan).
    let (per_route_preview, _) = route_and_eta(&graph, &periodic, from, to);
    let corridor = crowd_rtse::graph::bfs::k_hop_neighborhood(&graph, &per_route_preview, 2);
    let query = SpeedQuery::new(corridor, slot);
    let answer = engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: 40, ..Default::default() },
    );

    let (per_route, per_eta) = route_and_eta(&graph, &periodic, from, to);
    let (live_route, live_eta) = route_and_eta(&graph, &answer.all_values, from, to);
    let per_true = true_hours(&graph, truth, &per_route);
    let live_true = true_hours(&graph, truth, &live_route);

    println!(
        "incident at {} (severity {:.2}); planning {} -> {} at {:02}:{:02}\n",
        incident.road,
        incident.severity,
        from,
        to,
        slot.hour(),
        slot.minute()
    );
    let mut t = Table::new(
        "route comparison",
        &["planner", "roads", "ETA min", "true min", "ETA error min"],
    );
    for (name, route, eta, truth_h) in [
        ("periodic", &per_route, per_eta, per_true),
        ("CrowdRTSE", &live_route, live_eta, live_true),
    ] {
        t.push_row(vec![
            name.into(),
            route.len().to_string(),
            format!("{:.1}", eta * 60.0),
            format!("{:.1}", truth_h * 60.0),
            format!("{:.1}", (truth_h - eta).abs() * 60.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The realtime planner's ETA should be far closer to the truth; when the\n\
         incident sits on the periodic route, the routes themselves diverge."
    );
}
