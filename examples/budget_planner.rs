//! Budget planning: how much crowdsourcing is enough?
//!
//! Sweeps the budget K and the selection strategy, reporting estimation
//! quality per payment unit — the operational question a CrowdRTSE
//! deployment has to answer. Mirrors the structure of the paper's Fig. 3
//! at example scale.
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

use crowd_rtse::prelude::*;

fn main() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(200, 33);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 15, seed: 33, incidents_per_day: 3.0, ..SynthConfig::default() },
    )
    .generate();
    let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
    let engine = CrowdRtse::new(&graph, offline);

    let slot = SlotOfDay::from_hm(18, 0); // evening rush
    let truth = dataset.ground_truth_snapshot(slot);
    let queried: Vec<RoadId> = (0..graph.num_roads()).step_by(4).map(RoadId::from).collect();
    let query = SpeedQuery::new(queried, slot);
    let pool = WorkerPool::spawn(&graph, 120, 0.5, (0.3, 1.5), 8);
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 8);

    let mut table = Table::new(
        format!("budget sweep over {} queried roads, θ = 0.92", query.roads.len()),
        &["K", "strategy", "roads bought", "paid", "MAPE", "FER"],
    );
    for budget in [5u32, 10, 20, 40, 80] {
        for (label, strategy) in
            [("Hybrid", SelectionStrategy::Hybrid), ("Random", SelectionStrategy::Random(99))]
        {
            let config = OnlineConfig { budget, strategy, ..Default::default() };
            let answer = engine.answer_query(&query, &pool, &costs, truth, &config);
            let report = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
            table.push_row(vec![
                budget.to_string(),
                label.into(),
                answer.selection.roads.len().to_string(),
                answer.paid.to_string(),
                format!("{:.3}", report.mape),
                format!("{:.3}", report.fer),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Reading guide: MAPE should fall as K grows, fastest at small K, and\n\
         Hybrid should dominate Random at the same spend — the same shapes as\n\
         the paper's Fig. 3."
    );
}
