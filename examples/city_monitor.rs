//! Continuous city monitoring: a morning of back-to-back estimation
//! rounds with moving workers, warm-started propagation and a running
//! payment ledger.
//!
//! ```sh
//! cargo run --release --example city_monitor
//! ```

use crowd_rtse::core::MonitoringSession;
use crowd_rtse::prelude::*;

fn main() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(250, 55);
    let dataset = TrafficGenerator::new(
        &graph,
        SynthConfig { days: 15, seed: 55, incidents_per_day: 5.0, ..SynthConfig::default() },
    )
    .generate();
    let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
    let engine = CrowdRtse::new(&graph, offline);

    let pool = WorkerPool::spawn(&graph, 100, 0.5, (0.3, 1.2), 12);
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 12);
    let config = OnlineConfig { budget: 25, ..Default::default() };
    let mut session = MonitoringSession::new(&engine, config, pool, costs);

    // Monitor the whole network through the morning rush, one round per
    // 5-minute slot from 07:30 to 09:00.
    let queried: Vec<RoadId> = graph.road_ids().collect();
    let start = SlotOfDay::from_hm(7, 30);
    let rounds = 18;

    let mut table = Table::new(
        "morning monitoring (whole network, K = 25/round)",
        &["slot", "sampled", "paid", "GSP rounds", "warm", "MAPE", "FER"],
    );
    for k in 0..rounds {
        let slot = SlotOfDay(start.0 + k as u16);
        let truth = dataset.ground_truth_snapshot(slot).to_vec();
        let report = session.step(&queried, slot, &truth).expect("well-formed round");
        let quality = ErrorReport::evaluate_default(&report.values, &truth, &queried);
        table.push_row(vec![
            format!("{:02}:{:02}", slot.hour(), slot.minute()),
            report.selection.roads.len().to_string(),
            report.paid.to_string(),
            report.gsp_rounds.to_string(),
            if report.warm_started { "yes" } else { "no" }.into(),
            format!("{:.3}", quality.mape),
            format!("{:.3}", quality.fer),
        ]);
    }
    println!("{}", table.render());
    println!(
        "session total: {} payment units over {} rounds ({} per round budgeted)",
        session.total_paid(),
        session.rounds_run(),
        25
    );
}
