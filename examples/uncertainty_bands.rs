//! Uncertainty-aware estimation: posterior credible bands per road.
//!
//! GSP returns the most likely speed; the perturb-and-MAP sampler
//! (`rtse_gsp::uncertainty`) adds calibrated standard deviations, so a
//! consumer can tell a confident estimate (next to a probe) from a guess
//! (five hops from the nearest worker). The example prints bands for a
//! cross-section of roads and then checks empirical coverage against the
//! ground truth.
//!
//! ```sh
//! cargo run --release --example uncertainty_bands
//! ```

use crowd_rtse::gsp::sample_posterior;
use crowd_rtse::prelude::*;

fn main() {
    let graph = crowd_rtse::graph::generators::hong_kong_like(150, 91);
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 15, seed: 91, ..SynthConfig::default() })
            .generate();
    let model = moment_estimate(&graph, &dataset.history);
    let slot = SlotOfDay::from_hm(8, 30);
    let truth = dataset.ground_truth_snapshot(slot);

    // Probe a handful of roads (a small crowdsourcing round).
    let observations: Vec<(RoadId, f64)> =
        (0usize..10).map(|k| RoadId::from(k * 15)).map(|r| (r, truth[r.index()])).collect();
    let observed: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();

    let posterior = sample_posterior(&graph, model.slot(slot), &observations, 300, 7);
    let hops = crowd_rtse::graph::hop_distances(&graph, &observed);

    let mut table = Table::new(
        "posterior bands by distance from the nearest probe",
        &["road", "hops", "estimate", "±2σ band", "truth", "inside?"],
    );
    let mut shown_per_hop = [0usize; 5];
    for r in graph.road_ids() {
        let h = hops[r.index()];
        if h >= shown_per_hop.len() || shown_per_hop[h] >= 3 {
            continue;
        }
        shown_per_hop[h] += 1;
        let (lo, hi) = posterior.interval(r, 2.0);
        let t = truth[r.index()];
        table.push_row(vec![
            r.to_string(),
            h.to_string(),
            format!("{:.1}", posterior.mean[r.index()]),
            format!("[{lo:.1}, {hi:.1}]"),
            format!("{t:.1}"),
            if (lo..=hi).contains(&t) { "yes" } else { "NO" }.into(),
        ]);
    }
    println!("{}", table.render());

    // Empirical coverage of the 2σ band (~95% if calibrated) and the
    // band-width growth with hop distance.
    let mut inside = 0usize;
    let mut total = 0usize;
    let mut width_by_hop: Vec<(f64, usize)> = vec![(0.0, 0); 6];
    for r in graph.road_ids() {
        let (lo, hi) = posterior.interval(r, 2.0);
        let t = truth[r.index()];
        if posterior.std[r.index()] > 0.0 {
            total += 1;
            inside += usize::from((lo..=hi).contains(&t));
        }
        let h = hops[r.index()].min(5);
        width_by_hop[h].0 += hi - lo;
        width_by_hop[h].1 += 1;
    }
    println!(
        "2σ-band empirical coverage over {total} unobserved roads: {:.1}% (nominal ~95%)",
        100.0 * inside as f64 / total as f64
    );
    print!("mean band width by hop distance: ");
    for (h, (w, n)) in width_by_hop.iter().enumerate() {
        if *n > 0 {
            print!("{h}: {:.1}  ", w / *n as f64);
        }
    }
    println!();

    // The GMRF's edge factors each *add* precision, so its posterior is
    // systematically overconfident about the real world (the paper only
    // ever uses the mode, where this cannot matter). A deployment fixes it
    // empirically: pick z so that mean ± z·σ covers 95% of held-out truth.
    let mut ratios: Vec<f64> = graph
        .road_ids()
        .filter(|r| posterior.std[r.index()] > 0.0)
        .map(|r| (truth[r.index()] - posterior.mean[r.index()]).abs() / posterior.std[r.index()])
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let z95 = crowd_rtse::eval::quantile(&ratios, 0.95);
    println!("empirically calibrated z for 95% coverage: {z95:.1} (use mean ± {z95:.1}·σ)");
    println!(
        "\nNote: the relative band widths (wider far from probes) are the useful\n\
         signal — they tell OCS where the next budget buys the most information;\n\
         absolute calibration needs the empirical z above because the GMRF's\n\
         pseudo-likelihood construction is overconfident by design."
    );
}
