//! Quickstart: train CrowdRTSE offline on synthetic history, then answer a
//! realtime query online.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crowd_rtse::prelude::*;

fn main() {
    // ---- World setup -----------------------------------------------------
    // A synthetic city shaped like the paper's Hong Kong test bed, scaled
    // down to keep the example snappy, with 15 days of 5-minute history.
    let graph = crowd_rtse::graph::generators::hong_kong_like(200, 7);
    println!("network: {} roads, {} adjacencies", graph.num_roads(), graph.num_edges());
    let dataset =
        TrafficGenerator::new(&graph, SynthConfig { days: 15, seed: 7, ..SynthConfig::default() })
            .generate();
    println!("history: {} records over {} days", dataset.history.num_records(), 15);

    // ---- Offline stage ---------------------------------------------------
    // Estimate the RTF: slot means (periodicity), slot stds (periodicity
    // intensity) and adjacent-road correlations.
    let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
    let engine = CrowdRtse::new(&graph, offline);

    // ---- Online stage ----------------------------------------------------
    // 60 workers are out in the city; each road has a probe cost.
    let pool = WorkerPool::spawn(&graph, 60, 0.5, (0.3, 1.5), 42);
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, 42);
    println!("workers cover {} roads", pool.covered_roads().len());

    // Morning rush hour query over 25 roads.
    let slot = SlotOfDay::from_hm(8, 30);
    let query = SpeedQuery::new((0u32..25).map(RoadId).collect(), slot);
    let truth = dataset.ground_truth_snapshot(slot);

    let config = OnlineConfig { budget: 30, theta: 0.92, ..Default::default() };
    let answer = engine.answer_query(&query, &pool, &costs, truth, &config);

    println!(
        "\ncrowdsourced {} roads for {} payment units (OCS {:?}, GSP {:?})",
        answer.selection.roads.len(),
        answer.paid,
        answer.selection_time,
        answer.propagation_time,
    );

    // ---- Results ---------------------------------------------------------
    let mut table = Table::new(
        "realtime estimates (first 10 queried roads)",
        &["road", "estimate km/h", "truth km/h", "APE"],
    );
    for (i, &road) in query.roads.iter().take(10).enumerate() {
        let est = answer.estimates[i];
        let t = truth[road.index()];
        table.push_row(vec![
            road.to_string(),
            format!("{est:.1}"),
            format!("{t:.1}"),
            format!("{:.3}", crowd_rtse::eval::ape(est, t)),
        ]);
    }
    println!("\n{}", table.render());

    let report = ErrorReport::evaluate_default(&answer.all_values, truth, &query.roads);
    println!(
        "over all {} queried roads: MAPE {:.3}, FER {:.3}, MAE {:.2} km/h",
        report.count, report.mape, report.fer, report.mae
    );
}
